package faultnet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoUpstream serves a fixed JSON body, echoing the request path.
func echoUpstream(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Upstream-Path", r.URL.Path)
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// startProxy stands a proxy in front of ts and returns its base URL.
func startProxy(t *testing.T, ts *httptest.Server, seed int64) (*Proxy, string) {
	t.Helper()
	p := New(ts.URL, seed)
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p, "http://" + addr
}

func get(t *testing.T, url string) (*http.Response, string, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp, string(b), err
}

func TestTransparentForwarding(t *testing.T) {
	ts := echoUpstream(t, `{"ok":true}`)
	p, base := startProxy(t, ts, 1)

	resp, body, err := get(t, base+"/v1/decide")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || body != `{"ok":true}` {
		t.Fatalf("got %d %q", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Upstream-Path"); got != "/v1/decide" {
		t.Fatalf("path not forwarded: %q", got)
	}
	if st := p.Stats(); st.Forwarded != 1 || st.Requests != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPartitionResetsEveryRequest(t *testing.T) {
	ts := echoUpstream(t, "{}")
	p, base := startProxy(t, ts, 1)
	p.SetFaults(Faults{Partition: true})

	for i := 0; i < 3; i++ {
		if _, _, err := get(t, base+"/"); err == nil {
			t.Fatal("partitioned request succeeded")
		}
	}
	if st := p.Stats(); st.Partitions != 3 || st.Forwarded != 0 {
		t.Fatalf("stats: %+v", st)
	}

	// Heal: traffic flows again.
	p.SetFaults(Faults{})
	if _, _, err := get(t, base+"/"); err != nil {
		t.Fatalf("healed request failed: %v", err)
	}
}

func TestInjectedErrorsCarryRetryAfter(t *testing.T) {
	ts := echoUpstream(t, "{}")
	p, base := startProxy(t, ts, 1)
	p.SetFaults(Faults{ErrorRate: 1, ErrorCode: 502, RetryAfter: 250 * time.Millisecond})

	resp, body, err := get(t, base+"/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 502 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "0.25" {
		t.Fatalf("Retry-After %q", got)
	}
	if !strings.Contains(body, "injected") {
		t.Fatalf("body %q", body)
	}
	if st := p.Stats(); st.Errors != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTruncationIsAHardClientError(t *testing.T) {
	ts := echoUpstream(t, strings.Repeat("x", 4096))
	p, base := startProxy(t, ts, 1)
	p.SetFaults(Faults{TruncateRate: 1})

	resp, err := http.Get(base + "/")
	if err == nil {
		// Headers may arrive intact; the body read must fail short.
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(b) == 4096 {
			t.Fatal("truncated response arrived complete")
		}
	}
	if st := p.Stats(); st.Truncations != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLatencyAndBandwidthDelayResponses(t *testing.T) {
	body := strings.Repeat("y", 2000)
	ts := echoUpstream(t, body)
	p, base := startProxy(t, ts, 1)

	p.SetFaults(Faults{Latency: 50 * time.Millisecond})
	start := time.Now()
	if _, got, err := get(t, base+"/"); err != nil || got != body {
		t.Fatalf("latency fetch: %v", err)
	}
	if el := time.Since(start); el < 45*time.Millisecond {
		t.Fatalf("no latency injected: %v", el)
	}

	// 20 KB/s over 2000 bytes ≥ ~90ms even after the first free chunk.
	p.SetFaults(Faults{BandwidthBps: 20000})
	start = time.Now()
	if _, got, err := get(t, base+"/"); err != nil || got != body {
		t.Fatalf("throttled fetch: %v", err)
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("bandwidth cap not applied: %v", el)
	}
	if st := p.Stats(); st.Delayed == 0 || st.Throttled == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDeterministicFaultSequence drives two identically seeded proxies
// with an identical serialized request sequence under a probabilistic
// fault mix and requires the injected pattern to be identical.
func TestDeterministicFaultSequence(t *testing.T) {
	ts := echoUpstream(t, `{"ok":true}`)
	faults := Faults{ResetRate: 0.3, ErrorRate: 0.3, TruncateRate: 0.2}

	sequence := func(seed int64) []string {
		p, base := startProxy(t, ts, seed)
		p.SetFaults(faults)
		var seq []string
		for i := 0; i < 60; i++ {
			resp, body, err := get(t, base+"/")
			switch {
			case err != nil:
				seq = append(seq, "reset")
			case resp.StatusCode != http.StatusOK:
				seq = append(seq, "err")
			case body != `{"ok":true}`:
				seq = append(seq, "trunc")
			default:
				seq = append(seq, "ok")
			}
		}
		return seq
	}

	a, b := sequence(42), sequence(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := sequence(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 60-request fault sequences")
	}
}

// TestUpstreamDownMapsTo502: a dead upstream is a 502 from the proxy,
// not a proxy crash.
func TestUpstreamDownMapsTo502(t *testing.T) {
	ts := echoUpstream(t, "{}")
	url := ts.URL
	ts.Close()
	p := New(url, 1)
	addr, err := p.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, _, err := get(t, "http://"+addr+"/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if st := p.Stats(); st.UpstreamErr != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestChaosScenarioRunAppliesStepsInOrder(t *testing.T) {
	ts := echoUpstream(t, "{}")
	p, _ := startProxy(t, ts, 1)

	sc, err := ParseScenario("20ms:partition;20ms:err=0.5;20ms:off")
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	err = p.Run(context.Background(), sc, func(i int, s Step) {
		seen = append(seen, s.Faults.String())
		got := p.Faults()
		if i == 0 && !got.Partition {
			t.Error("step 0: partition not active")
		}
		if i == 1 && got.ErrorRate != 0.5 {
			t.Errorf("step 1: err rate %g", got.ErrorRate)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("steps seen: %v", seen)
	}
	if f := p.Faults(); f.Active() {
		t.Fatalf("faults not cleared after scenario: %v", f)
	}
}

func TestChaosScenarioRunHonorsContext(t *testing.T) {
	ts := echoUpstream(t, "{}")
	p, _ := startProxy(t, ts, 1)
	sc, err := ParseScenario("10s:partition")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := p.Run(ctx, sc, nil); err == nil {
		t.Fatal("cancelled run returned nil")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("run ignored cancellation")
	}
	if f := p.Faults(); f.Active() {
		t.Fatal("faults not cleared after cancelled scenario")
	}
}
