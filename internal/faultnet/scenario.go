package faultnet

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Step is one timed phase of a scenario: hold Faults for Duration.
type Step struct {
	Duration time.Duration
	Faults   Faults
}

// Scenario is a scripted fault timeline.
type Scenario struct {
	Name  string
	Steps []Step
}

// Total returns the scenario's scripted duration.
func (s Scenario) Total() time.Duration {
	var d time.Duration
	for _, st := range s.Steps {
		d += st.Duration
	}
	return d
}

// String renders the scenario in the DSL it parses from.
func (s Scenario) String() string {
	parts := make([]string, len(s.Steps))
	for i, st := range s.Steps {
		parts[i] = st.Duration.String() + ":" + st.Faults.String()
	}
	return strings.Join(parts, ";")
}

// Presets are the named scenarios accepted by ParseScenario (and the
// loadgen/hybridseld -faults/-chaos flags), expressed in the DSL.
//
//   - flap: the link drops and heals three times in quick succession —
//     the breaker must open during each partition and re-close after.
//   - brownout: latency and error rates ramp up, peak, and recover.
//   - partition-heal: a clean window, a hard partition, a healed window.
//   - faults30: a sustained ≈30% mixed-fault regime (resets + 5xx bursts
//   - truncation + jittered latency), the acceptance scenario: every
//     request must still complete remote, hedged, or fallback.
var Presets = map[string]string{
	"flap": "400ms:partition;400ms:off;400ms:partition;400ms:off;" +
		"400ms:partition;400ms:off",
	"brownout": "1s:lat=5ms,jit=5ms,err=0.1;2s:lat=20ms,jit=20ms,err=0.4," +
		"retryafter=50ms;1s:lat=5ms,err=0.1;1s:off",
	"partition-heal": "1s:off;1500ms:partition;2s:off",
	// reset 0.10 + 0.90·err 0.15 + 0.90·0.85·trunc 0.08 ≈ 0.297.
	"faults30": "10s:reset=0.1,err=0.15,trunc=0.08,lat=1ms,jit=2ms",
}

// ParseScenario resolves a preset name or parses the scenario DSL:
// semicolon-separated "duration:faultspec" steps, e.g.
//
//	500ms:partition;1s:off;2s:err=0.3,lat=5ms
//
// See ParseFaults for the fault-spec grammar.
func ParseScenario(spec string) (Scenario, error) {
	name := spec
	if dsl, ok := Presets[spec]; ok {
		spec = dsl
	}
	sc := Scenario{Name: name}
	for _, stepSpec := range strings.Split(spec, ";") {
		stepSpec = strings.TrimSpace(stepSpec)
		if stepSpec == "" {
			continue
		}
		durSpec, faultSpec, ok := strings.Cut(stepSpec, ":")
		if !ok {
			return Scenario{}, fmt.Errorf("faultnet: step %q: want duration:faults", stepSpec)
		}
		d, err := time.ParseDuration(strings.TrimSpace(durSpec))
		if err != nil {
			return Scenario{}, fmt.Errorf("faultnet: step %q: %w", stepSpec, err)
		}
		if d <= 0 {
			return Scenario{}, fmt.Errorf("faultnet: step %q: non-positive duration", stepSpec)
		}
		f, err := ParseFaults(faultSpec)
		if err != nil {
			return Scenario{}, err
		}
		sc.Steps = append(sc.Steps, Step{Duration: d, Faults: f})
	}
	if len(sc.Steps) == 0 {
		return Scenario{}, fmt.Errorf("faultnet: scenario %q has no steps", name)
	}
	return sc, nil
}

// ParseFaults parses one comma-separated fault spec. Keys:
//
//	off                 no faults (also the empty spec)
//	partition           drop everything
//	lat=<dur>           added latency
//	jit=<dur>           uniform extra latency in [0, jit)
//	bw=<bytes/sec>      response bandwidth cap
//	reset=<p>           connection-reset probability
//	trunc=<p>           response-truncation probability
//	err=<p>             injected-5xx probability
//	code=<status>       injected error status (default 503)
//	retryafter=<dur>    Retry-After advertised on injected errors
func ParseFaults(spec string) (Faults, error) {
	var f Faults
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		switch tok {
		case "", "off":
			continue
		case "partition":
			f.Partition = true
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return Faults{}, fmt.Errorf("faultnet: fault token %q: want key=value", tok)
		}
		var err error
		switch key {
		case "lat":
			f.Latency, err = time.ParseDuration(val)
		case "jit":
			f.Jitter, err = time.ParseDuration(val)
		case "retryafter":
			f.RetryAfter, err = time.ParseDuration(val)
		case "bw":
			f.BandwidthBps, err = strconv.ParseInt(val, 10, 64)
		case "reset":
			f.ResetRate, err = parseRate(val)
		case "trunc":
			f.TruncateRate, err = parseRate(val)
		case "err":
			f.ErrorRate, err = parseRate(val)
		case "code":
			f.ErrorCode, err = strconv.Atoi(val)
			if err == nil && (f.ErrorCode < 400 || f.ErrorCode > 599) {
				err = fmt.Errorf("status %d outside 400..599", f.ErrorCode)
			}
		default:
			return Faults{}, fmt.Errorf("faultnet: unknown fault key %q", key)
		}
		if err != nil {
			return Faults{}, fmt.Errorf("faultnet: fault token %q: %w", tok, err)
		}
	}
	return f, nil
}

func parseRate(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("rate %g outside [0, 1]", p)
	}
	return p, nil
}

// Run applies the scenario's steps in order, holding each fault set for
// its duration, and clears the faults when the scenario ends or ctx is
// cancelled. onStep, when non-nil, is called as each step becomes active.
func (p *Proxy) Run(ctx context.Context, sc Scenario, onStep func(i int, s Step)) error {
	defer p.SetFaults(Faults{})
	for i, st := range sc.Steps {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.SetFaults(st.Faults)
		if onStep != nil {
			onStep(i, st)
		}
		select {
		case <-time.After(st.Duration):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
