package faultnet

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the raw-TCP half of faultnet: a byte-level proxy for
// long-lived connections (the stream transport) that the HTTP proxy
// cannot exercise. Faults are drawn per accepted connection from one
// seeded RNG in accept order — each connection consumes exactly the
// same number of draws whatever the configuration, so (seed,
// accept-order) → fault mapping is stable, mirroring the HTTP proxy's
// determinism contract.

// TCPFaults configures the raw-TCP proxy. All rates are per-connection
// probabilities drawn once at accept time.
type TCPFaults struct {
	// ResetRate is the probability a connection gets a scheduled
	// mid-stream reset: after roughly ResetAfterBytes of
	// upstream→client traffic, both sides are hard-closed (RST).
	ResetRate float64
	// ResetAfterBytes positions the scheduled reset. Zero means a
	// seeded offset within the first 2 KiB, so the kill lands
	// mid-stream rather than before the handshake.
	ResetAfterBytes int64
	// TruncateRate is the probability (among reset connections) that
	// the chunk straddling the kill offset is partially delivered
	// before the close — the client sees a torn frame, then EOF —
	// instead of a cut at a chunk boundary.
	TruncateRate float64
	// StallRate is the probability a connection's upstream→client
	// relay pauses for Stall before the first chunk is delivered.
	StallRate float64
	Stall     time.Duration
	// Partition refuses the upstream dial outright: the client sees
	// an accepted connection that dies before the handshake.
	Partition bool
}

// Active reports whether any fault is switched on.
func (f TCPFaults) Active() bool {
	return f.ResetRate > 0 || f.TruncateRate > 0 ||
		(f.StallRate > 0 && f.Stall > 0) || f.Partition
}

// TCPStats is a point-in-time snapshot of the TCP proxy's counters.
type TCPStats struct {
	Conns       uint64 // connections accepted
	Relayed     uint64 // connections that completed relay without an injected fault
	Resets      uint64 // scheduled mid-stream resets fired
	Truncations uint64 // resets that delivered a torn chunk first
	Stalls      uint64 // first-chunk stalls applied
	Partitions  uint64 // connections refused by partition
	Killed      uint64 // connections hard-closed by KillActive
	UpstreamErr uint64 // upstream dial failures
	BytesUp     uint64 // client→upstream bytes relayed
	BytesDown   uint64 // upstream→client bytes relayed
}

// TCPProxy relays raw TCP connections to a fixed upstream address,
// injecting connection-level faults. Create with NewTCP, point stream
// clients at the address returned by Start.
type TCPProxy struct {
	target string // upstream host:port

	mu     sync.Mutex
	rng    *rand.Rand
	faults TCPFaults
	active map[*tcpRelay]struct{}

	conns, relayed, resets, truncations atomic.Uint64
	stalls, partitions, killed          atomic.Uint64
	upstreamErr, bytesUp, bytesDown     atomic.Uint64

	listener net.Listener
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// tcpRelay is one in-flight proxied connection pair.
type tcpRelay struct {
	client, upstream net.Conn
}

// hardClose drops both sides immediately. SetLinger(0) turns the close
// into a TCP RST so the peer observes a reset, not a graceful FIN.
func (r *tcpRelay) hardClose() {
	for _, c := range []net.Conn{r.client, r.upstream} {
		if c == nil {
			continue
		}
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		_ = c.Close()
	}
}

// close tears both sides down gracefully (FIN): bytes already written
// stay readable by the peer, which keeps injected truncations
// byte-exact instead of racing an RST against the peer's read.
func (r *tcpRelay) close() {
	for _, c := range []net.Conn{r.client, r.upstream} {
		if c != nil {
			_ = c.Close()
		}
	}
}

// NewTCP builds a raw-TCP proxy forwarding to target (host:port), with
// every probabilistic fault decision drawn from a RNG seeded with seed.
func NewTCP(target string, seed int64) *TCPProxy {
	return &TCPProxy{
		target: target,
		rng:    rand.New(rand.NewSource(seed)),
		active: make(map[*tcpRelay]struct{}),
	}
}

// SetFaults swaps the active fault configuration.
func (p *TCPProxy) SetFaults(f TCPFaults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// Faults returns the active fault configuration.
func (p *TCPProxy) Faults() TCPFaults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// Stats returns a point-in-time snapshot of the proxy's counters.
func (p *TCPProxy) Stats() TCPStats {
	return TCPStats{
		Conns:       p.conns.Load(),
		Relayed:     p.relayed.Load(),
		Resets:      p.resets.Load(),
		Truncations: p.truncations.Load(),
		Stalls:      p.stalls.Load(),
		Partitions:  p.partitions.Load(),
		Killed:      p.killed.Load(),
		UpstreamErr: p.upstreamErr.Load(),
		BytesUp:     p.bytesUp.Load(),
		BytesDown:   p.bytesDown.Load(),
	}
}

// Start binds addr (":0" for an ephemeral port) and serves the proxy on
// a background goroutine. It returns the bound address.
func (p *TCPProxy) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	p.listener = l
	p.wg.Add(1)
	go p.acceptLoop(l)
	return l.Addr().String(), nil
}

// KillActive hard-closes every connection currently being relayed and
// returns how many were killed. This is the deterministic mid-stream
// kill for chaos tests: no rate to tune, every in-flight stream dies
// right now.
func (p *TCPProxy) KillActive() int {
	p.mu.Lock()
	relays := make([]*tcpRelay, 0, len(p.active))
	for r := range p.active {
		relays = append(relays, r)
	}
	p.mu.Unlock()
	for _, r := range relays {
		r.hardClose()
	}
	p.killed.Add(uint64(len(relays)))
	return len(relays)
}

// Close stops the listener and tears down in-flight relays.
func (p *TCPProxy) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	var err error
	if p.listener != nil {
		err = p.listener.Close()
	}
	p.KillActive()
	p.wg.Wait()
	return err
}

// draw consumes one connection's random numbers under the lock. Every
// connection consumes exactly four draws whatever the configuration.
func (p *TCPProxy) draw() (f TCPFaults, reset, trunc, stall, off float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f = p.faults
	reset = p.rng.Float64()
	trunc = p.rng.Float64()
	stall = p.rng.Float64()
	off = p.rng.Float64()
	return f, reset, trunc, stall, off
}

func (p *TCPProxy) acceptLoop(l net.Listener) {
	defer p.wg.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		p.conns.Add(1)
		// Draw in accept order, before the goroutine races: the Nth
		// accepted connection always gets the Nth fault decision.
		f, reset, trunc, stall, off := p.draw()
		p.wg.Add(1)
		go p.serve(c, f, reset, trunc, stall, off)
	}
}

func (p *TCPProxy) serve(client net.Conn, f TCPFaults, reset, trunc, stall, off float64) {
	defer p.wg.Done()
	if f.Partition {
		p.partitions.Add(1)
		_ = client.Close()
		return
	}
	up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		p.upstreamErr.Add(1)
		_ = client.Close()
		return
	}
	r := &tcpRelay{client: client, upstream: up}
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		r.hardClose()
		return
	}
	p.active[r] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.active, r)
		p.mu.Unlock()
		r.close()
	}()

	// The scheduled reset lands in the downstream direction: responses
	// are where a torn frame is observable as a lost-in-flight verdict.
	resetAt := int64(-1)
	if reset < f.ResetRate {
		resetAt = f.ResetAfterBytes
		if resetAt <= 0 {
			resetAt = 1 + int64(off*2047)
		}
	}
	stallFirst := time.Duration(0)
	if f.Stall > 0 && stall < f.StallRate {
		stallFirst = f.Stall
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// client→upstream: plain relay, no faults.
		buf := make([]byte, 32<<10)
		for {
			n, rerr := client.Read(buf)
			if n > 0 {
				p.bytesUp.Add(uint64(n))
				if _, werr := up.Write(buf[:n]); werr != nil {
					break
				}
			}
			if rerr != nil {
				break
			}
		}
		// Client side done: unblock the downstream pump too, so a
		// half-dead pair never lingers.
		r.close()
	}()

	// upstream→client: the faulted direction.
	faulted := p.pumpDown(r, resetAt, trunc < f.TruncateRate, stallFirst)
	r.close()
	wg.Wait()
	if !faulted {
		p.relayed.Add(1)
	}
}

// pumpDown relays upstream→client, firing the scheduled reset (and
// optional torn-chunk truncation) when the byte offset is crossed. It
// reports whether a fault was injected.
func (p *TCPProxy) pumpDown(r *tcpRelay, resetAt int64, truncate bool, stallFirst time.Duration) bool {
	buf := make([]byte, 32<<10)
	var relayed int64
	first := true
	for {
		n, rerr := r.upstream.Read(buf)
		if n > 0 {
			if first && stallFirst > 0 {
				p.stalls.Add(1)
				time.Sleep(stallFirst)
			}
			first = false
			chunk := buf[:n]
			if resetAt >= 0 && relayed+int64(n) > resetAt {
				p.resets.Add(1)
				if truncate {
					if keep := resetAt - relayed; keep > 0 {
						p.truncations.Add(1)
						p.bytesDown.Add(uint64(keep))
						_, _ = r.client.Write(chunk[:keep])
					}
				}
				return true
			}
			relayed += int64(n)
			p.bytesDown.Add(uint64(n))
			if _, werr := r.client.Write(chunk); werr != nil {
				return false
			}
		}
		if rerr != nil {
			return false
		}
	}
}
