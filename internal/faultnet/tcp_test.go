package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// tcpUpstream starts a raw TCP server running handler on every accepted
// connection and returns its address.
func tcpUpstream(t *testing.T, handler func(net.Conn)) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go handler(c)
		}
	}()
	return l.Addr().String()
}

// tcpEchoUpstream echoes every byte back.
func tcpEchoUpstream(t *testing.T) string {
	return tcpUpstream(t, func(c net.Conn) {
		defer c.Close()
		_, _ = io.Copy(c, c)
	})
}

// burstUpstream writes n bytes of 'x' on connect, then closes.
func burstUpstream(t *testing.T, n int) string {
	return tcpUpstream(t, func(c net.Conn) {
		defer c.Close()
		_, _ = c.Write(bytes.Repeat([]byte{'x'}, n))
	})
}

// burstHoldUpstream writes n bytes of 'x' on connect, then holds the
// connection open until the peer goes away — keeps a relay in-flight
// for KillActive to find.
func burstHoldUpstream(t *testing.T, n int) string {
	return tcpUpstream(t, func(c net.Conn) {
		defer c.Close()
		if _, err := c.Write(bytes.Repeat([]byte{'x'}, n)); err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, c)
	})
}

func startTCPProxy(t *testing.T, target string, seed int64) *TCPProxy {
	t.Helper()
	p := NewTCP(target, seed)
	if _, err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

func dialProxy(t *testing.T, p *TCPProxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.listener.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	_ = c.SetDeadline(time.Now().Add(5 * time.Second))
	return c
}

// TestTCPProxyRelays: with no faults configured, the proxy is a
// transparent byte pipe in both directions.
func TestTCPProxyRelays(t *testing.T) {
	p := startTCPProxy(t, tcpEchoUpstream(t), 1)
	c := dialProxy(t, p)

	msg := []byte("hello, stream")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	st := p.Stats()
	if st.Conns != 1 || st.Resets != 0 || st.BytesUp < uint64(len(msg)) || st.BytesDown < uint64(len(msg)) {
		t.Fatalf("stats %+v", st)
	}
}

// TestTCPProxyScheduledResetTruncates: a certain reset at byte 8 with
// truncation delivers exactly 8 bytes of the straddling chunk, then the
// connection dies — the torn-frame case a stream client must survive.
func TestTCPProxyScheduledResetTruncates(t *testing.T) {
	p := startTCPProxy(t, burstUpstream(t, 64), 1)
	p.SetFaults(TCPFaults{ResetRate: 1, ResetAfterBytes: 8, TruncateRate: 1})
	c := dialProxy(t, p)

	got, err := io.ReadAll(c)
	if err == nil && len(got) == 64 {
		t.Fatal("64-byte burst survived a scheduled reset at byte 8")
	}
	if len(got) != 8 {
		t.Fatalf("read %d bytes before the reset, want exactly 8", len(got))
	}
	st := p.Stats()
	if st.Resets != 1 || st.Truncations != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestTCPProxyScheduledResetChunkBoundary: without truncation the kill
// drops the whole straddling chunk — the client sees a cut at a chunk
// boundary, not a torn frame.
func TestTCPProxyScheduledResetChunkBoundary(t *testing.T) {
	p := startTCPProxy(t, burstUpstream(t, 64), 1)
	p.SetFaults(TCPFaults{ResetRate: 1, ResetAfterBytes: 8})
	c := dialProxy(t, p)

	got, _ := io.ReadAll(c)
	if len(got) != 0 {
		t.Fatalf("read %d bytes, want 0 (whole chunk dropped)", len(got))
	}
	st := p.Stats()
	if st.Resets != 1 || st.Truncations != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestTCPProxyDeterministicDraws: two proxies with the same seed apply
// the same per-connection fault pattern in accept order.
func TestTCPProxyDeterministicDraws(t *testing.T) {
	pattern := func(seed int64) []bool {
		p := startTCPProxy(t, burstUpstream(t, 64), seed)
		p.SetFaults(TCPFaults{ResetRate: 0.5, ResetAfterBytes: 8})
		out := make([]bool, 12)
		for i := range out {
			c := dialProxy(t, p)
			got, _ := io.ReadAll(c)
			out[i] = len(got) == 64 // survived
			_ = c.Close()
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	if !bytes.Equal(boolsToBytes(a), boolsToBytes(b)) {
		t.Fatalf("same seed, different fault pattern:\n a=%v\n b=%v", a, b)
	}
	survived := 0
	for _, ok := range a {
		if ok {
			survived++
		}
	}
	if survived == 0 || survived == len(a) {
		t.Fatalf("0.5 reset rate produced a degenerate pattern: %v", a)
	}
}

func boolsToBytes(bs []bool) []byte {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = 1
		}
	}
	return out
}

// TestTCPProxyStall delays the first downstream chunk.
func TestTCPProxyStall(t *testing.T) {
	p := startTCPProxy(t, burstUpstream(t, 16), 1)
	p.SetFaults(TCPFaults{StallRate: 1, Stall: 60 * time.Millisecond})
	c := dialProxy(t, p)

	start := time.Now()
	got := make([]byte, 16)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("first byte after %v, want a ~60ms stall", d)
	}
	if st := p.Stats(); st.Stalls != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestTCPProxyPartition: the upstream dial is refused outright; the
// accepted connection dies before any byte.
func TestTCPProxyPartition(t *testing.T) {
	p := startTCPProxy(t, tcpEchoUpstream(t), 1)
	p.SetFaults(TCPFaults{Partition: true})
	// Dial by hand: a partitioned connection may be torn down so fast
	// the dial itself fails, which is an equally valid observation.
	c, err := net.DialTimeout("tcp", p.listener.Addr().String(), 2*time.Second)
	if err == nil {
		_ = c.SetDeadline(time.Now().Add(5 * time.Second))
		if got, _ := io.ReadAll(c); len(got) != 0 {
			t.Fatalf("partitioned connection delivered %d bytes", len(got))
		}
		_ = c.Close()
	}
	if st := p.Stats(); st.Partitions != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestTCPProxyKillActive hard-closes in-flight relays on demand — the
// deterministic mid-stream kill used by the stream chaos suite.
func TestTCPProxyKillActive(t *testing.T) {
	p := startTCPProxy(t, burstHoldUpstream(t, 4), 1)
	c := dialProxy(t, p)

	// Wait for the relay to establish (first bytes arrive).
	got := make([]byte, 4)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.KillActive() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no active relay to kill")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Read(got); err == nil {
		t.Fatal("killed connection still readable")
	}
	if st := p.Stats(); st.Killed == 0 {
		t.Fatalf("stats %+v", st)
	}
}
