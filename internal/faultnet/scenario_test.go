package faultnet

import (
	"strings"
	"testing"
	"time"
)

func TestParseFaultsGrammar(t *testing.T) {
	f, err := ParseFaults("lat=5ms,jit=2ms,bw=1024,reset=0.1,trunc=0.2,err=0.3,code=502,retryafter=100ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Faults{
		Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond,
		BandwidthBps: 1024, ResetRate: 0.1, TruncateRate: 0.2,
		ErrorRate: 0.3, ErrorCode: 502, RetryAfter: 100 * time.Millisecond,
	}
	if f != want {
		t.Fatalf("got %+v want %+v", f, want)
	}

	if f, err := ParseFaults("off"); err != nil || f.Active() {
		t.Fatalf("off: %+v %v", f, err)
	}
	if f, err := ParseFaults(""); err != nil || f.Active() {
		t.Fatalf("empty: %+v %v", f, err)
	}
	if f, err := ParseFaults("partition"); err != nil || !f.Partition {
		t.Fatalf("partition: %+v %v", f, err)
	}

	for _, bad := range []string{
		"nope=1", "reset=1.5", "err=-0.1", "lat=fast", "code=200", "reset",
	} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("spec %q parsed", bad)
		}
	}
}

func TestParseScenarioDSLRoundTrip(t *testing.T) {
	spec := "400ms:partition;1s:off;2s:err=0.3,lat=5ms"
	sc, err := ParseScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Steps) != 3 {
		t.Fatalf("steps %d", len(sc.Steps))
	}
	if sc.Total() != 400*time.Millisecond+time.Second+2*time.Second {
		t.Fatalf("total %v", sc.Total())
	}
	if !sc.Steps[0].Faults.Partition || sc.Steps[1].Faults.Active() {
		t.Fatalf("steps %+v", sc.Steps)
	}
	// The rendered DSL must re-parse to the same scenario.
	again, err := ParseScenario(sc.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", sc.String(), err)
	}
	if len(again.Steps) != len(sc.Steps) || again.Total() != sc.Total() {
		t.Fatalf("round trip changed scenario: %q", again.String())
	}
	for i := range sc.Steps {
		if again.Steps[i].Faults != sc.Steps[i].Faults {
			t.Fatalf("step %d changed: %+v vs %+v", i, again.Steps[i], sc.Steps[i])
		}
	}
}

func TestParseScenarioPresets(t *testing.T) {
	for name := range Presets {
		sc, err := ParseScenario(name)
		if err != nil {
			t.Errorf("preset %s: %v", name, err)
			continue
		}
		if sc.Name != name || len(sc.Steps) == 0 || sc.Total() <= 0 {
			t.Errorf("preset %s parsed oddly: %+v", name, sc)
		}
	}
	// faults30 must actually be a ≈30% regime.
	sc, err := ParseScenario("faults30")
	if err != nil {
		t.Fatal(err)
	}
	f := sc.Steps[0].Faults
	p := f.ResetRate + (1-f.ResetRate)*f.ErrorRate +
		(1-f.ResetRate)*(1-f.ErrorRate)*f.TruncateRate
	if p < 0.25 || p > 0.35 {
		t.Fatalf("faults30 total fault probability %.3f outside [0.25, 0.35]", p)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	for _, bad := range []string{
		"", ";", "partition", "0s:off", "-1s:off", "1s:wat=3", "1s",
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("scenario %q parsed", bad)
		}
	}
}

func TestFaultsStringStable(t *testing.T) {
	f, err := ParseFaults("partition,lat=1ms,err=0.25")
	if err != nil {
		t.Fatal(err)
	}
	s := f.String()
	for _, want := range []string{"partition", "lat=1ms", "err=0.25"} {
		if !strings.Contains(s, want) {
			t.Fatalf("%q missing %q", s, want)
		}
	}
	back, err := ParseFaults(s)
	if err != nil || back != f {
		t.Fatalf("String round trip: %q -> %+v (%v)", s, back, err)
	}
}
