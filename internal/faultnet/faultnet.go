// Package faultnet is a deterministic in-process fault-injection proxy
// for the hybridseld decision service. It stands between a client and the
// daemon as a plain HTTP forwarder and injects network pathologies on
// demand: added latency and jitter, bandwidth caps, abrupt connection
// resets, truncated responses, 5xx bursts, and full partitions.
//
// Determinism is the point: every probabilistic choice is drawn from one
// seeded RNG under a lock, in request-arrival order, and each request
// consumes a fixed number of draws regardless of the active fault set —
// so for a fixed seed and a serialized request sequence the injected
// fault pattern is exactly reproducible, which is what lets the chaos
// suite assert end-to-end client behaviour instead of "ran some chaos,
// nothing crashed".
//
// The fault set is reconfigurable at runtime (SetFaults) and scriptable
// as a timed Scenario (scenario.go): a sequence of (duration, fault-set)
// steps such as flap, brownout, or partition→heal.
package faultnet

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is one fault configuration. The zero value injects nothing and
// forwards transparently. Rates are probabilities in [0, 1]; for each
// request the proxy draws partition/reset first, then the error burst,
// then response truncation — so the total fault probability is
// reset + (1-reset)·err + (1-reset)·(1-err)·trunc.
type Faults struct {
	// Latency is added before the request is forwarded; Jitter adds a
	// uniform [0, Jitter) on top.
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBps caps the response-body copy rate (bytes/second).
	// 0 = unlimited.
	BandwidthBps int64
	// ResetRate is the probability of closing the client connection
	// abruptly without writing a response.
	ResetRate float64
	// TruncateRate is the probability of advertising the full
	// Content-Length but closing the connection halfway through the body.
	TruncateRate float64
	// ErrorRate is the probability of answering ErrorCode (default 503)
	// without forwarding; RetryAfter, when set, is advertised on the
	// injected error as a Retry-After header (seconds).
	ErrorRate  float64
	ErrorCode  int
	RetryAfter time.Duration
	// Partition drops every request with a connection reset.
	Partition bool
}

// Active reports whether the configuration injects anything at all.
func (f Faults) Active() bool {
	return f != Faults{}
}

// String renders the fault set in the scenario DSL ("off" when inactive).
func (f Faults) String() string {
	if !f.Active() {
		return "off"
	}
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	if f.Partition {
		add("partition")
	}
	if f.Latency > 0 {
		add("lat=" + f.Latency.String())
	}
	if f.Jitter > 0 {
		add("jit=" + f.Jitter.String())
	}
	if f.BandwidthBps > 0 {
		add("bw=" + strconv.FormatInt(f.BandwidthBps, 10))
	}
	if f.ResetRate > 0 {
		add("reset=" + strconv.FormatFloat(f.ResetRate, 'g', -1, 64))
	}
	if f.TruncateRate > 0 {
		add("trunc=" + strconv.FormatFloat(f.TruncateRate, 'g', -1, 64))
	}
	if f.ErrorRate > 0 {
		add("err=" + strconv.FormatFloat(f.ErrorRate, 'g', -1, 64))
	}
	if f.ErrorCode != 0 {
		add("code=" + strconv.Itoa(f.ErrorCode))
	}
	if f.RetryAfter > 0 {
		add("retryafter=" + f.RetryAfter.String())
	}
	return strings.Join(parts, ",")
}

// Stats counts what the proxy did, by outcome. Forwarded counts requests
// that reached the upstream and whose response was relayed intact
// (possibly delayed or bandwidth-capped).
type Stats struct {
	Requests    uint64
	Forwarded   uint64
	Delayed     uint64
	Throttled   uint64
	Partitions  uint64
	Resets      uint64
	Truncations uint64
	Errors      uint64 // injected 5xx
	UpstreamErr uint64 // upstream unreachable (mapped to 502)
}

// String renders the counters on one line for run summaries.
func (s Stats) String() string {
	return fmt.Sprintf(
		"requests=%d forwarded=%d delayed=%d throttled=%d partitions=%d resets=%d truncations=%d injected5xx=%d upstreamErr=%d",
		s.Requests, s.Forwarded, s.Delayed, s.Throttled,
		s.Partitions, s.Resets, s.Truncations, s.Errors, s.UpstreamErr)
}

// Proxy is the fault-injection forwarder. Create with New, point traffic
// at the address returned by Start, reconfigure with SetFaults (or drive
// a Scenario with Run).
type Proxy struct {
	target string // upstream base URL, e.g. "http://127.0.0.1:8080"
	client *http.Client

	mu     sync.Mutex
	rng    *rand.Rand
	faults Faults

	requests, forwarded, delayed, throttled atomic.Uint64
	partitions, resets, truncations         atomic.Uint64
	errors, upstreamErr                     atomic.Uint64

	srv      *http.Server
	listener net.Listener
}

// New builds a proxy forwarding to the target base URL, with every
// probabilistic fault decision drawn from a RNG seeded with seed.
func New(target string, seed int64) *Proxy {
	return &Proxy{
		target: strings.TrimSuffix(target, "/"),
		rng:    rand.New(rand.NewSource(seed)),
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
			},
		},
	}
}

// SetFaults swaps the active fault configuration.
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// Faults returns the active fault configuration.
func (p *Proxy) Faults() Faults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// Stats returns a point-in-time snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:    p.requests.Load(),
		Forwarded:   p.forwarded.Load(),
		Delayed:     p.delayed.Load(),
		Throttled:   p.throttled.Load(),
		Partitions:  p.partitions.Load(),
		Resets:      p.resets.Load(),
		Truncations: p.truncations.Load(),
		Errors:      p.errors.Load(),
		UpstreamErr: p.upstreamErr.Load(),
	}
}

// Start binds addr (":0" for an ephemeral port) and serves the proxy on a
// background goroutine. It returns the bound address.
func (p *Proxy) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	p.listener = l
	p.srv = &http.Server{Handler: p}
	go func() { _ = p.srv.Serve(l) }()
	return l.Addr().String(), nil
}

// Close stops the listener and in-flight forwarding.
func (p *Proxy) Close() error {
	if p.srv == nil {
		return nil
	}
	return p.srv.Close()
}

// draw snapshots the fault set and consumes the request's random numbers.
// Every request consumes exactly the same number of draws whatever the
// configuration, so the (seed, arrival-order) → fault mapping is stable
// across configurations.
func (p *Proxy) draw() (f Faults, reset, errp, trunc, jit float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f = p.faults
	reset = p.rng.Float64()
	errp = p.rng.Float64()
	trunc = p.rng.Float64()
	jit = p.rng.Float64()
	return f, reset, errp, trunc, jit
}

// ServeHTTP applies the active fault set to one request.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	f, reset, errp, trunc, jit := p.draw()

	if f.Partition {
		p.partitions.Add(1)
		abort(w)
		return
	}
	if reset < f.ResetRate {
		p.resets.Add(1)
		abort(w)
		return
	}
	if d := f.Latency + time.Duration(jit*float64(f.Jitter)); d > 0 {
		p.delayed.Add(1)
		select {
		case <-time.After(d):
		case <-r.Context().Done():
			abort(w)
			return
		}
	}
	if errp < f.ErrorRate {
		p.errors.Add(1)
		code := f.ErrorCode
		if code == 0 {
			code = http.StatusServiceUnavailable
		}
		if f.RetryAfter > 0 {
			w.Header().Set("Retry-After",
				strconv.FormatFloat(f.RetryAfter.Seconds(), 'g', -1, 64))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"error":"faultnet: injected %d"}`, code)
		return
	}

	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		p.upstreamErr.Add(1)
		http.Error(w, "faultnet: "+err.Error(), http.StatusBadGateway)
		return
	}
	out.Header = r.Header.Clone()
	resp, err := p.client.Do(out)
	if err != nil {
		p.upstreamErr.Add(1)
		http.Error(w, "faultnet: upstream: "+err.Error(), http.StatusBadGateway)
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		p.upstreamErr.Add(1)
		http.Error(w, "faultnet: upstream body: "+err.Error(), http.StatusBadGateway)
		return
	}

	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	// The body was drained above, so the advertised length is exact even
	// when the upstream streamed chunks — which is what makes truncation
	// below observable as a hard error, not a short-but-valid response.
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(resp.StatusCode)

	if trunc < f.TruncateRate && len(body) > 1 {
		p.truncations.Add(1)
		_, _ = w.Write(body[:len(body)/2])
		abort(w)
		return
	}
	if f.BandwidthBps > 0 {
		p.throttled.Add(1)
		p.copyThrottled(w, r, body, f.BandwidthBps)
	} else {
		_, _ = w.Write(body)
	}
	p.forwarded.Add(1)
}

// copyThrottled writes body at roughly bps bytes/second in 10ms slices.
func (p *Proxy) copyThrottled(w http.ResponseWriter, r *http.Request, body []byte, bps int64) {
	const tick = 10 * time.Millisecond
	chunk := int(bps / int64(time.Second/tick))
	if chunk < 1 {
		chunk = 1
	}
	fl, _ := w.(http.Flusher)
	for off := 0; off < len(body); off += chunk {
		end := off + chunk
		if end > len(body) {
			end = len(body)
		}
		if _, err := w.Write(body[off:end]); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		if end == len(body) {
			return
		}
		select {
		case <-time.After(tick):
		case <-r.Context().Done():
			return
		}
	}
}

// abort terminates the client connection without a well-formed response:
// the hijacked conn is closed mid-stream, which the client observes as a
// reset/EOF transport error. Falls back to http.ErrAbortHandler when the
// writer cannot be hijacked (HTTP/2, test recorders).
func abort(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			_ = conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}
