package gpumodel

import (
	"strings"
	"testing"

	"github.com/hybridsel/hybridsel/internal/machine"
)

func TestPredictionFormat(t *testing.T) {
	p := mustPredict(t, stream(), machine.TeslaV100(), machine.NVLink2(),
		1<<22, DefaultOptions())
	out := p.Format()
	for _, want := range []string{
		"GPU model prediction", "MWP", "CWP", "#Rep", "#OMP_Rep",
		"coalesced fraction", "transfer", "grid:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}
