// Package gpumodel implements the Hong–Kim analytical GPU performance
// model (MWP/CWP — memory- and compute-warp parallelism; paper Figures 4
// and 5), adapted as the paper adapts it:
//
//   - architecture parameters for Kepler and Volta devices (Table III);
//   - memory-coalescing inputs (#Coal_Mem_insts / #Uncoal_Mem_insts)
//     supplied by the IPDA symbolic stride analysis instead of traces;
//   - a new #OMP_Rep factor modelling OpenMP thread-to-iteration
//     scheduling when the selected grid geometry does not cover the
//     parallel iteration space; and
//   - host↔device data transfer over the platform interconnect, which the
//     paper includes in every kernel timing.
package gpumodel

import (
	"fmt"
	"math"

	"github.com/hybridsel/hybridsel/internal/ipda"
	"github.com/hybridsel/hybridsel/internal/ir"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

// CoalescingSource selects how the model obtains coalescing inputs.
type CoalescingSource uint8

// Coalescing sources. UseIPDA is the paper's contribution; the two crude
// assumptions are the ablation baselines representing prior approaches
// that lack a static stride analysis.
const (
	UseIPDA CoalescingSource = iota
	AssumeAllCoalesced
	AssumeAllUncoalesced
)

// String names the source.
func (c CoalescingSource) String() string {
	switch c {
	case UseIPDA:
		return "ipda"
	case AssumeAllCoalesced:
		return "all-coalesced"
	case AssumeAllUncoalesced:
		return "all-uncoalesced"
	}
	return fmt.Sprintf("CoalescingSource(%d)", c)
}

// Options toggle model features for ablation studies.
type Options struct {
	Coalescing CoalescingSource
	// OMPRep enables the paper's #OMP_Rep extension; disabling it
	// reverts to the original Hong–Kim grid assumption.
	OMPRep bool
	// IncludeTransfer adds host↔device copies to the predicted time
	// (the paper's timing protocol includes them).
	IncludeTransfer bool
	// CacheAware refines per-access latencies with IPDA locality
	// information (line reuse along the inner loop, L2-resident
	// re-walked footprints, broadcast operands). This is the "improved
	// representation of the memory hierarchy" the paper identifies as
	// the main accuracy gap; disabling it reverts to the original
	// Hong–Kim flat-latency memory term.
	CacheAware bool
}

// DefaultOptions returns the runtime's default configuration.
func DefaultOptions() Options {
	return Options{Coalescing: UseIPDA, OMPRep: true, IncludeTransfer: true,
		CacheAware: true}
}

// Input gathers everything the model needs for one prediction.
type Input struct {
	Kernel   *ir.Kernel
	GPU      *machine.GPU
	Link     machine.Link
	Bindings symbolic.Bindings
	CountOpt ir.CountOptions
	// IPDA is required when Options.Coalescing == UseIPDA.
	IPDA    *ipda.Result
	Options Options

	// IterFraction, when in (0,1), predicts offloading only the leading
	// fraction of the iteration space (transfer volume scales with it).
	IterFraction float64
}

// Prediction is the model output with the intermediate MWP/CWP terms
// exposed for inspection and testing.
type Prediction struct {
	Seconds         float64
	ExecCycles      float64
	TransferSeconds float64
	LaunchSeconds   float64

	// Model intermediates (Figure 5 terms).
	MWP, CWP       float64
	MWPWithoutBW   float64
	MWPPeakBW      float64
	N              float64 // active warps per SM
	Rep            float64 // #Rep: block waves per SM
	OMPRep         float64 // #OMP_Rep: loop iterations per GPU thread
	MemCycles      float64
	CompCycles     float64
	MemInsts       float64
	CoalFraction   float64
	Blocks         int64
	ThreadsPerBlk  int
	ActiveSMs      int
	WarpsPerSM     float64
	TransferBytes  int64
	MemLatencyCoal float64
	MemLatencyUnc  float64
}

// launchOverheadSec is the per-kernel-launch software overhead (driver
// queueing; context initialization is excluded per the paper's protocol).
const launchOverheadSec = 8e-6

// Predict evaluates the adapted Hong–Kim model.
func Predict(in Input) (Prediction, error) {
	if in.Kernel == nil || in.GPU == nil {
		return Prediction{}, fmt.Errorf("gpumodel: nil kernel or GPU")
	}
	g := in.GPU
	opt := in.CountOpt
	if opt.DefaultTrip == 0 {
		opt = ir.DefaultCountOptions()
	}
	if opt.Bindings == nil {
		// Default to hybrid counting: runtime values plus midpoints for
		// parallel indices, so triangular inner loops resolve to their
		// mean rather than the 128-iteration fallback.
		opt.Bindings = ir.MidpointBindings(in.Kernel, in.Bindings)
	}

	iters, err := in.Kernel.IterSpace().Eval(in.Bindings)
	if err != nil {
		return Prediction{}, fmt.Errorf("gpumodel: iteration space: %w", err)
	}
	frac := 1.0
	if f := in.IterFraction; f > 0 && f < 1 {
		frac = f
		iters = int64(float64(iters)*f + 0.5)
		if iters < 1 {
			iters = 1
		}
	}
	if iters <= 0 {
		return Prediction{}, fmt.Errorf("gpumodel: empty iteration space (%d)", iters)
	}

	var p Prediction

	// Grid geometry the OpenMP runtime would select.
	tpb := g.DefaultBlockSize
	blocks := (iters + int64(tpb) - 1) / int64(tpb)
	if blocks > int64(g.MaxGridBlocks) {
		blocks = int64(g.MaxGridBlocks)
	}
	p.Blocks = blocks
	p.ThreadsPerBlk = tpb

	// #OMP_Rep: distinct loop iterations per GPU thread when the grid
	// does not cover the iteration space.
	p.OMPRep = 1
	if in.Options.OMPRep {
		p.OMPRep = math.Ceil(float64(iters) / float64(blocks*int64(tpb)))
	}

	// Occupancy: blocks resident per SM and active warps N.
	warpsPerBlock := float64(tpb) / float64(g.WarpSize)
	blocksPerSM := int64(g.MaxBlocksPerSM)
	if mw := int64(float64(g.MaxWarpsPerSM) / warpsPerBlock); mw < blocksPerSM {
		blocksPerSM = mw
	}
	if mt := int64(g.MaxThreadsPerSM / tpb); mt < blocksPerSM {
		blocksPerSM = mt
	}
	activeSMs := g.SMs
	if blocks < int64(g.SMs) {
		activeSMs = int(blocks)
	}
	p.ActiveSMs = activeSMs
	residentBlocks := blocksPerSM
	if perSM := (blocks + int64(activeSMs) - 1) / int64(activeSMs); perSM < residentBlocks {
		residentBlocks = perSM
	}
	N := float64(residentBlocks) * warpsPerBlock
	if N < 1 {
		N = 1
	}
	p.N = N
	p.WarpsPerSM = N

	// #Rep: waves of thread blocks over the device.
	p.Rep = float64(blocks) / (float64(residentBlocks) * float64(activeSMs))
	if p.Rep < 1 {
		p.Rep = 1
	}

	// Instruction loadout per work item (= per thread per OMP_Rep).
	load := ir.Count(in.Kernel, opt)
	memInsts := load.Mem()
	compInsts := load.Total() - memInsts
	p.MemInsts = memInsts

	// Coalescing inputs.
	coalFrac := 1.0
	switch in.Options.Coalescing {
	case UseIPDA:
		if in.IPDA == nil {
			return Prediction{}, fmt.Errorf("gpumodel: coalescing source is IPDA but no analysis supplied")
		}
		sum, err := in.IPDA.GPUCoalescing(in.Bindings, ipda.WarpGeom{
			WarpSize: g.WarpSize, TransactionBytes: g.L2.LineBytes})
		if err != nil {
			return Prediction{}, err
		}
		coalFrac = sum.CoalescedFraction()
	case AssumeAllCoalesced:
		coalFrac = 1
	case AssumeAllUncoalesced:
		coalFrac = 0
	}
	p.CoalFraction = coalFrac

	memL := float64(g.MemLatency)
	// Departure delay (Figure 5): coalesced warps leave the memory
	// pipeline every DepartureDelayCoal cycles; uncoalesced warps occupy
	// it once per transaction.
	depCoal := g.DepartureDelayCoal
	depUncoal := g.DepartureDelayUncoal * float64(g.WarpSize)
	departure := coalFrac*depCoal + (1-coalFrac)*depUncoal
	if departure <= 0 {
		departure = depCoal
	}

	// Per-access effective latencies.
	p.MemLatencyCoal = memL
	p.MemLatencyUnc = memL + (float64(g.WarpSize)-1)*g.DepartureDelayUncoal

	var memCycles float64
	if in.Options.CacheAware && in.Options.Coalescing == UseIPDA && in.IPDA != nil {
		memCycles = cacheAwareMemCycles(in, g, opt)
	} else {
		nCoal := memInsts * coalFrac
		nUncoal := memInsts * (1 - coalFrac)
		memCycles = nCoal*p.MemLatencyCoal + nUncoal*p.MemLatencyUnc
	}
	p.MemCycles = memCycles

	compCycles := g.IssueRate * compInsts
	// Long-latency arithmetic (div/sqrt) adds its latency beyond issue.
	compCycles += load.FPDiv*float64(g.FPLatency)*4 + load.FPSpecial*float64(g.FPLatency)*4
	p.CompCycles = compCycles

	// MWP (Figure 5).
	p.MWPWithoutBW = memL / departure
	loadBytesPerWarp := float64(g.WarpSize) * 8 // f64 kernels
	bwPerWarp := g.ClockGHz * 1e9 * loadBytesPerWarp / memL
	p.MWPPeakBW = g.PeakBandwidthBytes() / (bwPerWarp * float64(activeSMs))
	p.MWP = math.Min(math.Min(p.MWPWithoutBW, p.MWPPeakBW), N)
	if p.MWP < 1 {
		p.MWP = 1
	}

	// CWP (Figure 5).
	if compCycles > 0 {
		p.CWP = math.Min((memCycles+compCycles)/compCycles, N)
	} else {
		p.CWP = N
	}
	if p.CWP < 1 {
		p.CWP = 1
	}

	// Execution cycles per SM (Figure 4), scaled by #Rep × #OMP_Rep.
	var exec float64
	perMem := 0.0
	if memInsts > 0 {
		perMem = compCycles / memInsts
	}
	switch {
	case memInsts == 0:
		// Pure compute: warps pipeline on the issue ports.
		exec = compCycles * N / math.Max(1, math.Min(N, float64(g.CoresPerSM)/float64(g.WarpSize)))
	case p.MWP >= p.CWP && nearlyEqual(p.MWP, N) && nearlyEqual(p.CWP, N):
		// Case 1: not enough warps to hide either latency.
		exec = memCycles + compCycles + perMem*(p.MWP-1)
	case p.CWP >= p.MWP:
		// Case 2: memory-bound; memory requests serialize in MWP groups.
		exec = memCycles*N/p.MWP + perMem*(p.MWP-1)
	default:
		// Case 3: compute-bound; computation hides all but one memory
		// latency.
		exec = memL + compCycles*N
	}
	exec *= p.Rep * p.OMPRep
	p.ExecCycles = exec

	sec := exec / (g.ClockGHz * 1e9)
	p.LaunchSeconds = launchOverheadSec
	sec += launchOverheadSec

	if in.Options.IncludeTransfer {
		bytes, err := TransferBytes(in.Kernel, in.Bindings)
		if err != nil {
			return Prediction{}, err
		}
		bytes = int64(float64(bytes) * frac)
		p.TransferBytes = bytes
		p.TransferSeconds = in.Link.TransferSeconds(bytes)
		sec += p.TransferSeconds
	}
	p.Seconds = sec
	return p, nil
}

// cacheAwareMemCycles computes the per-work-item memory cycles with IPDA
// locality refinements:
//
//   - uniform (broadcast) operands are L1-resident after the first warp;
//   - accesses whose subscript is invariant in the innermost sequential
//     loop stay in registers/L1 across its iterations;
//   - strided/uncoalesced walks whose inner stride is one element refill
//     a line only every line/elem iterations (Volta's large L1 makes this
//     cheap — a major generational effect);
//   - accesses re-walked by an enclosing sequential loop whose per-warp
//     footprint fits the L2 pay L2-hit latency on subsequent passes.
//
// Everything else pays the flat Hong–Kim latency.
func cacheAwareMemCycles(in Input, g *machine.GPU, opt ir.CountOptions) float64 {
	geom := ipda.WarpGeom{WarpSize: g.WarpSize, TransactionBytes: g.L2.LineBytes}
	uncoalPerTx := g.DepartureDelayUncoal
	var total float64
	for i := range in.IPDA.Sites {
		s := &in.IPDA.Sites[i]
		wa, err := s.ResolveGPU(in.Bindings, geom)
		if err != nil {
			wa = ipda.WarpAccess{Class: ipda.NonUniform, Transactions: g.WarpSize}
		}
		lat := float64(g.MemLatency)
		switch wa.Class {
		case ipda.Uniform:
			lat = float64(g.L1HitLatency)
		case ipda.Coalesced:
			if s.HasInner && s.InnerAffine {
				if st, err := s.InnerStride.Eval(in.Bindings); err == nil && st == 0 {
					// Loop-invariant within the inner loop: register/L1.
					lat = float64(g.L1HitLatency)
				}
			}
		case ipda.Strided, ipda.Uncoalesced, ipda.NonUniform:
			lat = float64(g.MemLatency) +
				float64(wa.Transactions-1)*uncoalPerTx
			if s.InnerAffine {
				if st, err := s.InnerStride.Eval(in.Bindings); err == nil &&
					(st == 1 || st == -1) {
					// Per-thread streaming: the expensive refill happens
					// once per cache line of elements.
					frac := float64(s.Access.Elem.Size()) / float64(g.L1.LineBytes)
					lat = float64(g.L1HitLatency) + lat*frac
				}
			}
		}
		// Re-walked footprint resident in L2.
		if seq := sequentialLoops(s.Access.Loops); len(seq) >= 2 {
			inner := seq[len(seq)-1]
			trip := int64(opt.DefaultTrip)
			if opt.Bindings != nil {
				if t, err := inner.TripEval(opt.Bindings); err == nil {
					trip = t
				}
			}
			fp := trip * int64(wa.Transactions) * g.L2.LineBytes
			if fp <= g.L2.SizeBytes && float64(g.L2HitLatency) < lat {
				lat = float64(g.L2HitLatency)
			}
		}
		total += s.Access.Weight * lat
	}
	return total
}

// sequentialLoops filters the non-parallel loops of an access context.
func sequentialLoops(loops []*ir.Loop) []*ir.Loop {
	var out []*ir.Loop
	for _, l := range loops {
		if !l.Parallel {
			out = append(out, l)
		}
	}
	return out
}

// TransferBytes sums the host→device bytes (In arrays) and device→host
// bytes (Out arrays) the offload must move.
func TransferBytes(k *ir.Kernel, b symbolic.Bindings) (int64, error) {
	var total int64
	for _, a := range k.Arrays {
		n, err := a.Bytes().Eval(b)
		if err != nil {
			return 0, fmt.Errorf("gpumodel: sizing %s: %w", a.Name, err)
		}
		if a.In {
			total += n
		}
		if a.Out {
			total += n
		}
	}
	return total, nil
}

func nearlyEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
