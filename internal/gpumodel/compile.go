package gpumodel

import (
	"fmt"
	"math"

	"github.com/hybridsel/hybridsel/internal/ipda"
	"github.com/hybridsel/hybridsel/internal/ir"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

// CompileInput gathers the kernel, device and pre-compiled analyses a
// region compiles its GPU model against; the slot layout and compiled
// analyses are shared with the CPU model.
type CompileInput struct {
	Kernel  *ir.Kernel
	GPU     *machine.GPU
	Link    machine.Link
	Options Options

	// IPDA is the compiled stride analysis; required when
	// Options.Coalescing == UseIPDA (as the interpreted model requires
	// the interpreted analysis).
	IPDA *ipda.CompiledResult

	// Count is the compiled instruction counter over Slots.
	Count *ir.CountProgram

	// Slots is the slot layout and Bound the raw (parameter) name set.
	Slots map[string]int
	Bound map[string]bool

	// DefaultTrip is the CountOptions.DefaultTrip the compiled model
	// replicates (0 selects ir.DefaultCountOptions().DefaultTrip).
	DefaultTrip int64
}

// compiledTransfer is one array's compiled byte-size expression; times is
// 1 for one-directional arrays and 2 when the array crosses the link both
// ways (In and Out).
type compiledTransfer struct {
	bytes symbolic.Compiled
	times int
}

// Compiled is the Hong–Kim Predict specialized to one (kernel, GPU,
// link, options) region: grid-independent occupancy bounds, stride
// classification programs and transfer-size polynomials are fixed at
// compile time, so each Predict call is slot-vector evaluation plus the
// model's own arithmetic, bit-for-bit identical to the interpreted
// Predict.
type Compiled struct {
	g           *machine.GPU
	link        machine.Link
	opts        Options
	ipda        *ipda.CompiledResult
	count       *ir.CountProgram
	iterSpace   symbolic.Compiled
	transfers   []compiledTransfer
	defaultTrip int64
}

// Compile specializes the model to the region. It fails — keeping the
// region interpreted — exactly when the interpreted Predict would error
// per call: unresolvable iteration space or array sizes, or an IPDA
// coalescing source with no analysis supplied.
func Compile(in CompileInput) (*Compiled, error) {
	if in.Kernel == nil || in.GPU == nil {
		return nil, fmt.Errorf("gpumodel: nil kernel or GPU")
	}
	if in.Count == nil {
		return nil, fmt.Errorf("gpumodel: compile: missing count program")
	}
	if in.Options.Coalescing == UseIPDA && in.IPDA == nil {
		return nil, fmt.Errorf("gpumodel: coalescing source is IPDA but no analysis supplied")
	}
	c := &Compiled{
		g:           in.GPU,
		link:        in.Link,
		opts:        in.Options,
		ipda:        in.IPDA,
		count:       in.Count,
		defaultTrip: in.DefaultTrip,
	}
	if c.defaultTrip == 0 {
		c.defaultTrip = ir.DefaultCountOptions().DefaultTrip
	}
	space := in.Kernel.IterSpace()
	if !ir.Resolvable(space, in.Bound) {
		return nil, fmt.Errorf("gpumodel: compile: iteration space %s not resolvable from parameters", space)
	}
	cs, err := symbolic.Compile(space, in.Slots)
	if err != nil {
		return nil, err
	}
	c.iterSpace = cs

	if in.Options.IncludeTransfer {
		for _, a := range in.Kernel.Arrays {
			// The interpreted TransferBytes sizes every array, erroring on
			// any unresolvable one even if it never crosses the link.
			bexpr := a.Bytes()
			if !ir.Resolvable(bexpr, in.Bound) {
				return nil, fmt.Errorf("gpumodel: compile: sizing %s: %s not resolvable from parameters",
					a.Name, bexpr)
			}
			times := 0
			if a.In {
				times++
			}
			if a.Out {
				times++
			}
			if times == 0 {
				continue
			}
			cb, err := symbolic.Compile(bexpr, in.Slots)
			if err != nil {
				return nil, err
			}
			c.transfers = append(c.transfers, compiledTransfer{bytes: cb, times: times})
		}
	}
	return c, nil
}

// Predict replays the interpreted Predict over slot vectors. vals is the
// raw parameter vector and mid the midpoint-augmented copy (the hybrid
// counting bindings).
func (c *Compiled) Predict(vals, mid []int64, branchProb, iterFraction float64) (Prediction, error) {
	g := c.g
	iters := c.iterSpace.Eval(vals)
	frac := 1.0
	if f := iterFraction; f > 0 && f < 1 {
		frac = f
		iters = int64(float64(iters)*f + 0.5)
		if iters < 1 {
			iters = 1
		}
	}
	if iters <= 0 {
		return Prediction{}, fmt.Errorf("gpumodel: empty iteration space (%d)", iters)
	}

	var p Prediction

	tpb := g.DefaultBlockSize
	blocks := (iters + int64(tpb) - 1) / int64(tpb)
	if blocks > int64(g.MaxGridBlocks) {
		blocks = int64(g.MaxGridBlocks)
	}
	p.Blocks = blocks
	p.ThreadsPerBlk = tpb

	p.OMPRep = 1
	if c.opts.OMPRep {
		p.OMPRep = math.Ceil(float64(iters) / float64(blocks*int64(tpb)))
	}

	warpsPerBlock := float64(tpb) / float64(g.WarpSize)
	blocksPerSM := int64(g.MaxBlocksPerSM)
	if mw := int64(float64(g.MaxWarpsPerSM) / warpsPerBlock); mw < blocksPerSM {
		blocksPerSM = mw
	}
	if mt := int64(g.MaxThreadsPerSM / tpb); mt < blocksPerSM {
		blocksPerSM = mt
	}
	activeSMs := g.SMs
	if blocks < int64(g.SMs) {
		activeSMs = int(blocks)
	}
	p.ActiveSMs = activeSMs
	residentBlocks := blocksPerSM
	if perSM := (blocks + int64(activeSMs) - 1) / int64(activeSMs); perSM < residentBlocks {
		residentBlocks = perSM
	}
	N := float64(residentBlocks) * warpsPerBlock
	if N < 1 {
		N = 1
	}
	p.N = N
	p.WarpsPerSM = N

	p.Rep = float64(blocks) / (float64(residentBlocks) * float64(activeSMs))
	if p.Rep < 1 {
		p.Rep = 1
	}

	load := c.count.Eval(mid, branchProb, c.defaultTrip)
	memInsts := load.Mem()
	compInsts := load.Total() - memInsts
	p.MemInsts = memInsts

	geom := ipda.WarpGeom{WarpSize: g.WarpSize, TransactionBytes: g.L2.LineBytes}
	coalFrac := 1.0
	switch c.opts.Coalescing {
	case UseIPDA:
		coalFrac = c.ipda.CoalescedFraction(vals, geom)
	case AssumeAllCoalesced:
		coalFrac = 1
	case AssumeAllUncoalesced:
		coalFrac = 0
	}
	p.CoalFraction = coalFrac

	memL := float64(g.MemLatency)
	depCoal := g.DepartureDelayCoal
	depUncoal := g.DepartureDelayUncoal * float64(g.WarpSize)
	departure := coalFrac*depCoal + (1-coalFrac)*depUncoal
	if departure <= 0 {
		departure = depCoal
	}

	p.MemLatencyCoal = memL
	p.MemLatencyUnc = memL + (float64(g.WarpSize)-1)*g.DepartureDelayUncoal

	var memCycles float64
	if c.opts.CacheAware && c.opts.Coalescing == UseIPDA && c.ipda != nil {
		memCycles = c.cacheAwareMemCycles(vals, mid, geom)
	} else {
		nCoal := memInsts * coalFrac
		nUncoal := memInsts * (1 - coalFrac)
		memCycles = nCoal*p.MemLatencyCoal + nUncoal*p.MemLatencyUnc
	}
	p.MemCycles = memCycles

	compCycles := g.IssueRate * compInsts
	compCycles += load.FPDiv*float64(g.FPLatency)*4 + load.FPSpecial*float64(g.FPLatency)*4
	p.CompCycles = compCycles

	p.MWPWithoutBW = memL / departure
	loadBytesPerWarp := float64(g.WarpSize) * 8
	bwPerWarp := g.ClockGHz * 1e9 * loadBytesPerWarp / memL
	p.MWPPeakBW = g.PeakBandwidthBytes() / (bwPerWarp * float64(activeSMs))
	p.MWP = math.Min(math.Min(p.MWPWithoutBW, p.MWPPeakBW), N)
	if p.MWP < 1 {
		p.MWP = 1
	}

	if compCycles > 0 {
		p.CWP = math.Min((memCycles+compCycles)/compCycles, N)
	} else {
		p.CWP = N
	}
	if p.CWP < 1 {
		p.CWP = 1
	}

	var exec float64
	perMem := 0.0
	if memInsts > 0 {
		perMem = compCycles / memInsts
	}
	switch {
	case memInsts == 0:
		exec = compCycles * N / math.Max(1, math.Min(N, float64(g.CoresPerSM)/float64(g.WarpSize)))
	case p.MWP >= p.CWP && nearlyEqual(p.MWP, N) && nearlyEqual(p.CWP, N):
		exec = memCycles + compCycles + perMem*(p.MWP-1)
	case p.CWP >= p.MWP:
		exec = memCycles*N/p.MWP + perMem*(p.MWP-1)
	default:
		exec = memL + compCycles*N
	}
	exec *= p.Rep * p.OMPRep
	p.ExecCycles = exec

	sec := exec / (g.ClockGHz * 1e9)
	p.LaunchSeconds = launchOverheadSec
	sec += launchOverheadSec

	if c.opts.IncludeTransfer {
		var bytes int64
		for i := range c.transfers {
			t := &c.transfers[i]
			n := t.bytes.Eval(vals)
			for j := 0; j < t.times; j++ {
				bytes += n
			}
		}
		bytes = int64(float64(bytes) * frac)
		p.TransferBytes = bytes
		p.TransferSeconds = c.link.TransferSeconds(bytes)
		sec += p.TransferSeconds
	}
	p.Seconds = sec
	return p, nil
}

// cacheAwareMemCycles replays the interpreted cacheAwareMemCycles over
// the compiled sites (same site order, same fallbacks).
func (c *Compiled) cacheAwareMemCycles(vals, mid []int64, geom ipda.WarpGeom) float64 {
	g := c.g
	uncoalPerTx := g.DepartureDelayUncoal
	var total float64
	for i := range c.ipda.Sites {
		s := &c.ipda.Sites[i]
		wa := s.ResolveGPU(vals, geom)
		lat := float64(g.MemLatency)
		switch wa.Class {
		case ipda.Uniform:
			lat = float64(g.L1HitLatency)
		case ipda.Coalesced:
			if s.HasInner && s.InnerAffine {
				if st, ok := s.InnerStrideVal(vals); ok && st == 0 {
					lat = float64(g.L1HitLatency)
				}
			}
		case ipda.Strided, ipda.Uncoalesced, ipda.NonUniform:
			lat = float64(g.MemLatency) +
				float64(wa.Transactions-1)*uncoalPerTx
			if s.InnerAffine {
				if st, ok := s.InnerStrideVal(vals); ok && (st == 1 || st == -1) {
					fr := float64(s.ElemSize) / float64(g.L1.LineBytes)
					lat = float64(g.L1HitLatency) + lat*fr
				}
			}
		}
		if s.SeqDepth >= 2 {
			trip := c.defaultTrip
			if t, ok := s.SeqTrip.Eval(mid); ok {
				trip = t
			}
			fp := trip * int64(wa.Transactions) * g.L2.LineBytes
			if fp <= g.L2.SizeBytes && float64(g.L2HitLatency) < lat {
				lat = float64(g.L2HitLatency)
			}
		}
		total += s.Weight * lat
	}
	return total
}
