package gpumodel

import (
	"testing"

	"github.com/hybridsel/hybridsel/internal/ipda"
	"github.com/hybridsel/hybridsel/internal/ir"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

type compiledFixture struct {
	slots    map[string]int
	bound    map[string]bool
	augBound map[string]bool
	aug      *ir.Augment
	count    *ir.CountProgram
	an       *ipda.Result
	ic       *ipda.CompiledResult
	nslots   int
}

func buildFixture(t *testing.T, k *ir.Kernel) *compiledFixture {
	t.Helper()
	f := &compiledFixture{slots: map[string]int{}, bound: map[string]bool{}}
	n := 0
	for _, p := range k.Params {
		f.slots[p] = n
		f.bound[p] = true
		n++
	}
	for _, l := range k.ParallelLoops() {
		if _, ok := f.slots[l.Var]; !ok {
			f.slots[l.Var] = n
			n++
		}
	}
	f.nslots = n
	var err error
	f.aug, f.augBound, err = ir.CompileAugment(k, f.slots, f.bound)
	if err != nil {
		t.Fatalf("%s: augment: %v", k.Name, err)
	}
	f.count, err = ir.CompileCount(k, f.slots, f.augBound)
	if err != nil {
		t.Fatalf("%s: count: %v", k.Name, err)
	}
	f.an, err = ipda.Analyze(k, ir.DefaultCountOptions())
	if err != nil {
		t.Fatalf("%s: ipda: %v", k.Name, err)
	}
	f.ic, err = ipda.CompileResult(f.an, f.slots, f.bound, f.augBound)
	if err != nil {
		t.Fatalf("%s: ipda compile: %v", k.Name, err)
	}
	return f
}

func (f *compiledFixture) vectors(b symbolic.Bindings) (vals, mid []int64) {
	vals = make([]int64, f.nslots)
	for name, v := range b {
		if i, ok := f.slots[name]; ok {
			vals[i] = v
		}
	}
	mid = append([]int64(nil), vals...)
	f.aug.Midpoint(mid)
	return vals, mid
}

// TestCompiledPredictMatchesInterpreted pins the tentpole contract on
// the GPU side: full Prediction struct equality between the compiled
// and interpreted models for every Polybench kernel, mode, platform,
// option set, and split fraction.
func TestCompiledPredictMatchesInterpreted(t *testing.T) {
	platforms := []machine.Platform{machine.PlatformP9V100(), machine.PlatformP8K80()}
	optSets := []Options{
		DefaultOptions(),
		{Coalescing: UseIPDA, OMPRep: true, IncludeTransfer: true, CacheAware: false},
		{Coalescing: AssumeAllCoalesced, OMPRep: false, IncludeTransfer: false, CacheAware: true},
		{Coalescing: AssumeAllUncoalesced, OMPRep: true, IncludeTransfer: true, CacheAware: true},
	}
	fracs := []float64{0, 0.25, 0.62}
	for _, pk := range polybench.Suite() {
		k := pk.IR
		f := buildFixture(t, k)
		for _, plat := range platforms {
			for oi, opts := range optSets {
				c, err := Compile(CompileInput{
					Kernel: k, GPU: plat.GPU, Link: plat.Link, Options: opts,
					IPDA: f.ic, Count: f.count,
					Slots: f.slots, Bound: f.bound, DefaultTrip: 128,
				})
				if err != nil {
					t.Fatalf("%s on %s opts[%d]: compile: %v", pk.Name, plat.Name, oi, err)
				}
				for _, mode := range []polybench.Mode{polybench.Test, polybench.Benchmark} {
					b := pk.Bindings(mode)
					opt := ir.CountOptions{DefaultTrip: 128, BranchProb: 0.5,
						Bindings: ir.MidpointBindings(k, b)}
					vals, mid := f.vectors(b)
					for _, frac := range fracs {
						want, err := Predict(Input{
							Kernel: k, GPU: plat.GPU, Link: plat.Link,
							Bindings: b, CountOpt: opt, IPDA: f.an,
							Options: opts, IterFraction: frac,
						})
						if err != nil {
							t.Fatalf("%s on %s opts[%d]: %v", pk.Name, plat.Name, oi, err)
						}
						got, err := c.Predict(vals, mid, 0.5, frac)
						if err != nil {
							t.Fatalf("%s on %s opts[%d]: compiled: %v", pk.Name, plat.Name, oi, err)
						}
						if got != want {
							t.Errorf("%s on %s (%s, opts[%d], frac=%g):\ncompiled    %+v\ninterpreted %+v",
								pk.Name, plat.Name, mode, oi, frac, got, want)
						}
					}
				}
			}
		}
	}
}

// TestCompileRequiresIPDAForCoalescing mirrors the interpreted error.
func TestCompileRequiresIPDAForCoalescing(t *testing.T) {
	pk := polybench.Suite()[0]
	f := buildFixture(t, pk.IR)
	plat := machine.PlatformP9V100()
	_, err := Compile(CompileInput{
		Kernel: pk.IR, GPU: plat.GPU, Link: plat.Link,
		Options: DefaultOptions(), IPDA: nil, Count: f.count,
		Slots: f.slots, Bound: f.bound,
	})
	if err == nil {
		t.Fatal("compile succeeded without IPDA under UseIPDA coalescing")
	}
}
