package gpumodel

import (
	"fmt"
	"strings"
)

// Format renders the prediction with its Hong–Kim intermediates — the
// white-box view of where the predicted time comes from.
func (p Prediction) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "GPU model prediction: %.6g s\n", p.Seconds)
	fmt.Fprintf(&sb, "  grid: %d blocks x %d threads   active SMs %d   warps/SM %.0f\n",
		p.Blocks, p.ThreadsPerBlk, p.ActiveSMs, p.WarpsPerSM)
	fmt.Fprintf(&sb, "  MWP %.2f (no-BW %.2f, peak-BW %.2f)   CWP %.2f   N %.0f\n",
		p.MWP, p.MWPWithoutBW, p.MWPPeakBW, p.CWP, p.N)
	fmt.Fprintf(&sb, "  #Rep %.2f   #OMP_Rep %.0f   coalesced fraction %.0f%%\n",
		p.Rep, p.OMPRep, p.CoalFraction*100)
	fmt.Fprintf(&sb, "  mem cycles/item %.4g   comp cycles/item %.4g   exec %.4g cycles\n",
		p.MemCycles, p.CompCycles, p.ExecCycles)
	fmt.Fprintf(&sb, "  kernel %.6g s   transfer %.6g s (%d bytes)   launch %.2g s\n",
		p.Seconds-p.TransferSeconds-p.LaunchSeconds, p.TransferSeconds,
		p.TransferBytes, p.LaunchSeconds)
	return sb.String()
}
