package gpumodel

import (
	"testing"

	"github.com/hybridsel/hybridsel/internal/ipda"
	"github.com/hybridsel/hybridsel/internal/ir"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

// stream: A[i] = B[i] + C[i], coalesced and memory-bound.
func stream() *ir.Kernel {
	n := ir.V("n")
	return &ir.Kernel{
		Name:   "stream",
		Params: []string{"n"},
		Arrays: []*ir.Array{
			ir.In("B", ir.F64, n), ir.In("C", ir.F64, n), ir.Out("A", ir.F64, n),
		},
		Body: []ir.Stmt{
			ir.ParFor("i", ir.N(0), n,
				ir.Store(ir.R("A", ir.V("i")),
					ir.FAdd(ir.Ld("B", ir.V("i")), ir.Ld("C", ir.V("i"))))),
		},
	}
}

// rowStore: threads walk rows of a row-major matrix — every access
// uncoalesced.
func rowStore() *ir.Kernel {
	n := ir.V("n")
	return &ir.Kernel{
		Name:   "rowstore",
		Params: []string{"n"},
		Arrays: []*ir.Array{ir.Arr("A", ir.F64, n, n)},
		Body: []ir.Stmt{
			ir.ParFor("i", ir.N(0), n,
				ir.For("j", ir.N(0), n,
					ir.Store(ir.R("A", ir.V("i"), ir.V("j")), ir.F(1)))),
		},
	}
}

func mustPredict(t *testing.T, k *ir.Kernel, gpu *machine.GPU, link machine.Link,
	n int64, opts Options) Prediction {
	t.Helper()
	b := symbolic.Bindings{"n": n}
	in := Input{Kernel: k, GPU: gpu, Link: link, Bindings: b, Options: opts}
	if opts.Coalescing == UseIPDA {
		res, err := ipda.Analyze(k, ir.CountOptions{DefaultTrip: 128,
			BranchProb: 0.5, Bindings: b})
		if err != nil {
			t.Fatal(err)
		}
		in.IPDA = res
	}
	p, err := Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStreamIsMemoryBound(t *testing.T) {
	p := mustPredict(t, stream(), machine.TeslaV100(), machine.NVLink2(),
		1<<24, DefaultOptions())
	if p.Seconds <= 0 || p.ExecCycles <= 0 {
		t.Fatalf("prediction = %+v", p)
	}
	// A 3-access, 1-flop kernel must classify memory-bound: CWP
	// saturates against MWP.
	if p.CWP < p.MWP {
		t.Fatalf("CWP %.1f < MWP %.1f for a streaming kernel", p.CWP, p.MWP)
	}
	if p.CoalFraction != 1 {
		t.Fatalf("stream should be fully coalesced, got %v", p.CoalFraction)
	}
}

func TestBandwidthGenerationGap(t *testing.T) {
	// The same memory-bound kernel must run roughly bandwidth-ratio
	// faster on the V100 than the K80 (paper: 900 vs 480 GB/s explains
	// 3DCONV flipping profitable).
	nolink := machine.Link{Name: "none", BandwidthGBs: 1e9}
	v := mustPredict(t, stream(), machine.TeslaV100(), nolink, 1<<24, DefaultOptions())
	k := mustPredict(t, stream(), machine.TeslaK80(), nolink, 1<<24, DefaultOptions())
	ratio := k.Seconds / v.Seconds
	if ratio < 1.4 {
		t.Fatalf("V100/K80 speedup = %.2f, want >= 1.4 (bandwidth-bound)", ratio)
	}
}

func TestUncoalescedPenalty(t *testing.T) {
	// Compare under the flat Hong–Kim memory term (cache refinement off)
	// to isolate the coalescing penalty itself.
	v100 := machine.TeslaV100()
	link := machine.NVLink2()
	opts := DefaultOptions()
	opts.CacheAware = false
	coal := mustPredict(t, stream(), v100, link, 1<<24, opts)
	unc := mustPredict(t, rowStore(), v100, link, 1<<12, opts)
	if unc.CoalFraction != 0 {
		t.Fatalf("rowStore coal fraction = %v, want 0", unc.CoalFraction)
	}
	// Per memory instruction, uncoalesced accesses must be far more
	// expensive.
	coalPer := coal.MemCycles / coal.MemInsts
	uncPer := unc.MemCycles / unc.MemInsts
	if uncPer < coalPer*2 {
		t.Fatalf("uncoalesced %.0f cyc/inst vs coalesced %.0f: no penalty",
			uncPer, coalPer)
	}
}

func TestCoalescingAblationOrdering(t *testing.T) {
	// For a fully-coalesced kernel: the all-uncoalesced assumption must
	// overestimate, the all-coalesced assumption must match IPDA.
	v100 := machine.TeslaV100()
	link := machine.NVLink2()
	b := symbolic.Bindings{"n": 1 << 24}
	res, err := ipda.Analyze(stream(), ir.CountOptions{DefaultTrip: 128,
		BranchProb: 0.5, Bindings: b})
	if err != nil {
		t.Fatal(err)
	}
	base := Input{Kernel: stream(), GPU: v100, Link: link, Bindings: b, IPDA: res}

	pi := base
	pi.Options = Options{Coalescing: UseIPDA, OMPRep: true, IncludeTransfer: true}
	pc := base
	pc.Options = Options{Coalescing: AssumeAllCoalesced, OMPRep: true, IncludeTransfer: true}
	pu := base
	pu.Options = Options{Coalescing: AssumeAllUncoalesced, OMPRep: true, IncludeTransfer: true}

	ri, err := Predict(pi)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Predict(pc)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := Predict(pu)
	if err != nil {
		t.Fatal(err)
	}
	// IPDA (with cache refinement off for a like-for-like comparison)
	// must match the all-coalesced assumption on a fully-coalesced
	// kernel; the all-uncoalesced assumption must overestimate.
	pi2 := base
	pi2.Options = Options{Coalescing: UseIPDA, OMPRep: true, IncludeTransfer: true,
		CacheAware: false}
	ri2, err := Predict(pi2)
	if err != nil {
		t.Fatal(err)
	}
	if ri2.Seconds != rc.Seconds {
		t.Fatalf("IPDA (%.6f) != all-coalesced (%.6f) on a coalesced kernel",
			ri2.Seconds, rc.Seconds)
	}
	if ru.Seconds <= ri.Seconds || ru.Seconds <= ri2.Seconds {
		t.Fatalf("all-uncoalesced (%.6f) should overestimate IPDA (%.6f)",
			ru.Seconds, ri.Seconds)
	}
}

func TestCacheAwareRefinement(t *testing.T) {
	// A kernel with an L2-resident re-walked column footprint must be
	// predicted faster with the cache-aware memory term than without.
	n := ir.V("n")
	k := &ir.Kernel{
		Name:   "rewalk",
		Params: []string{"n"},
		Arrays: []*ir.Array{ir.In("D", ir.F64, n, n), ir.Out("s", ir.F64, n)},
		Body: []ir.Stmt{
			ir.ParFor("j1", ir.N(0), n,
				ir.For("j2", ir.N(0), n,
					ir.Set("acc", ir.F(0)),
					ir.For("i", ir.N(0), n,
						ir.AccumS("acc", ir.FMul(
							ir.Ld("D", ir.V("i"), ir.V("j1")),
							ir.Ld("D", ir.V("i"), ir.V("j2"))))),
					ir.Accum(ir.R("s", ir.V("j1")), ir.S("acc")))),
		},
	}
	b := symbolic.Bindings{"n": 2048}
	res, err := ipda.Analyze(k, ir.CountOptions{DefaultTrip: 128, BranchProb: 0.5, Bindings: b})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Kernel: k, GPU: machine.TeslaV100(), Link: machine.NVLink2(),
		Bindings: b, IPDA: res,
		CountOpt: ir.CountOptions{DefaultTrip: 128, BranchProb: 0.5, Bindings: b}}
	in.Options = DefaultOptions()
	aware, err := Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Options.CacheAware = false
	flat, err := Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	if aware.MemCycles >= flat.MemCycles {
		t.Fatalf("cache-aware mem cycles %.0f >= flat %.0f",
			aware.MemCycles, flat.MemCycles)
	}
}

func TestOMPRepExtension(t *testing.T) {
	// Paper's example scaled up: with a one-wave grid cap, a huge
	// iteration space forces each GPU thread to run multiple loop
	// iterations.
	v100 := machine.TeslaV100()
	n := int64(1 << 24) // 16M iterations >> 2560 blocks × 128 threads
	p := mustPredict(t, stream(), v100, machine.NVLink2(), n, DefaultOptions())
	wantRep := float64((n + 2560*128 - 1) / (2560 * 128))
	if p.OMPRep != wantRep {
		t.Fatalf("OMPRep = %v, want %v", p.OMPRep, wantRep)
	}
	// Disabling the extension must shrink the prediction.
	off := mustPredict(t, stream(), v100, machine.NVLink2(), n,
		Options{Coalescing: UseIPDA, OMPRep: false, IncludeTransfer: true})
	if off.ExecCycles >= p.ExecCycles {
		t.Fatalf("OMPRep off (%.0f) >= on (%.0f)", off.ExecCycles, p.ExecCycles)
	}
	if off.OMPRep != 1 {
		t.Fatalf("OMPRep disabled but = %v", off.OMPRep)
	}
}

func TestSmallGridUnderOccupies(t *testing.T) {
	// 256 iterations = 2 blocks: only 2 SMs active, N small, case-1 path.
	p := mustPredict(t, stream(), machine.TeslaV100(), machine.NVLink2(),
		256, DefaultOptions())
	if p.Blocks != 2 || p.ActiveSMs != 2 {
		t.Fatalf("blocks=%d activeSMs=%d", p.Blocks, p.ActiveSMs)
	}
	if p.N != 4 { // 1 resident block × 4 warps
		t.Fatalf("N = %v, want 4", p.N)
	}
	if p.Rep != 1 {
		t.Fatalf("Rep = %v", p.Rep)
	}
}

func TestTransferAccounting(t *testing.T) {
	k := stream()
	b := symbolic.Bindings{"n": 1 << 20}
	bytes, err := TransferBytes(k, b)
	if err != nil {
		t.Fatal(err)
	}
	// B and C are In (8 MB each), A is Out (8 MB): 24 MB total.
	want := int64(3 * (1 << 20) * 8)
	if bytes != want {
		t.Fatalf("TransferBytes = %d, want %d", bytes, want)
	}
	with := mustPredict(t, k, machine.TeslaV100(), machine.NVLink2(), 1<<20,
		DefaultOptions())
	without := mustPredict(t, k, machine.TeslaV100(), machine.NVLink2(), 1<<20,
		Options{Coalescing: UseIPDA, OMPRep: true, IncludeTransfer: false})
	if with.Seconds <= without.Seconds {
		t.Fatal("transfer time not added")
	}
	if with.TransferBytes != want {
		t.Fatalf("prediction TransferBytes = %d", with.TransferBytes)
	}
}

func TestLinkGenerationGap(t *testing.T) {
	// Same device, PCIe vs NVLink: transfer-heavy small kernels improve.
	k := stream()
	pcie := mustPredict(t, k, machine.TeslaV100(), machine.PCIe3(), 1<<22,
		DefaultOptions())
	nvl := mustPredict(t, k, machine.TeslaV100(), machine.NVLink2(), 1<<22,
		DefaultOptions())
	if nvl.TransferSeconds >= pcie.TransferSeconds {
		t.Fatal("NVLink transfer not faster than PCIe")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Predict(Input{}); err == nil {
		t.Error("nil input accepted")
	}
	k := stream()
	if _, err := Predict(Input{Kernel: k, GPU: machine.TeslaV100(),
		Bindings: symbolic.Bindings{"n": 100},
		Options:  DefaultOptions()}); err == nil {
		t.Error("missing IPDA accepted with UseIPDA")
	}
	if _, err := Predict(Input{Kernel: k, GPU: machine.TeslaV100(),
		Options: DefaultOptions()}); err == nil {
		t.Error("unbound parameters accepted")
	}
	if _, err := Predict(Input{Kernel: k, GPU: machine.TeslaV100(),
		Bindings: symbolic.Bindings{"n": 0},
		Options:  DefaultOptions()}); err == nil {
		t.Error("empty iteration space accepted")
	}
}

func TestCoalescingSourceString(t *testing.T) {
	if UseIPDA.String() != "ipda" || AssumeAllCoalesced.String() != "all-coalesced" ||
		AssumeAllUncoalesced.String() != "all-uncoalesced" {
		t.Error("stringer mismatch")
	}
}
