// Package attrdb implements the Program Attribute Database of the paper's
// compiler/runtime framework (Figure 2).
//
// At compile time, the static analyses populate one RegionAttrs record per
// outlined target region: the instruction loadout under the static
// heuristics, the symbolic IPDA stride expression of every memory access,
// the symbolic iteration-space and transfer-size expressions, and the list
// of runtime parameters whose values the expressions still need. The
// record is fully serializable (JSON): in the paper the compiler embeds it
// in the binary and the OpenMP runtime queries it by region identifier.
//
// At run time, Resolve binds the missing parameter values (array sizes,
// loop trip counts) and produces the concrete model inputs: exact
// iteration count, transfer bytes, and the coalesced/uncoalesced access
// classification that completes the Hong–Kim model.
package attrdb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/hybridsel/hybridsel/internal/ipda"
	"github.com/hybridsel/hybridsel/internal/ir"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

// StrideAttr is the stored IPDA result for one access site.
type StrideAttr struct {
	Ref    string        `json:"ref"`
	Kind   string        `json:"kind"` // "load" | "store"
	Weight float64       `json:"weight"`
	Elem   int64         `json:"elemBytes"`
	Thread symbolic.Expr `json:"threadStride"`
	// ThreadAffine is false for non-affine subscripts (pessimized).
	ThreadAffine bool          `json:"threadAffine"`
	Inner        symbolic.Expr `json:"innerStride"`
	InnerAffine  bool          `json:"innerAffine"`
	HasInner     bool          `json:"hasInner"`
	Outer        symbolic.Expr `json:"outerStride"`
	OuterAffine  bool          `json:"outerAffine"`
}

// LoadoutAttr is the stored static instruction loadout.
type LoadoutAttr struct {
	FPAdd     float64 `json:"fpAdd"`
	FPMul     float64 `json:"fpMul"`
	FPDiv     float64 `json:"fpDiv"`
	FPSpecial float64 `json:"fpSpecial"`
	IntOps    float64 `json:"intOps"`
	Loads     float64 `json:"loads"`
	Stores    float64 `json:"stores"`
	Branches  float64 `json:"branches"`
}

// toLoadout converts back to the analysis type.
func (l LoadoutAttr) toLoadout() ir.Loadout {
	return ir.Loadout{FPAdd: l.FPAdd, FPMul: l.FPMul, FPDiv: l.FPDiv,
		FPSpecial: l.FPSpecial, IntOps: l.IntOps, Loads: l.Loads,
		Stores: l.Stores, Branches: l.Branches}
}

// RegionAttrs is the stored record of one target region.
type RegionAttrs struct {
	Region    string        `json:"region"`
	Params    []string      `json:"params"`
	IterSpace symbolic.Expr `json:"iterSpace"`
	// TransferBytes = host->device + device->host bytes.
	TransferBytes symbolic.Expr `json:"transferBytes"`
	Loadout       LoadoutAttr   `json:"loadout"`
	Sites         []StrideAttr  `json:"sites"`
}

// Build populates the record for a kernel — the compile-time half of the
// framework. The static heuristics (128 iterations, 50% branches) are
// baked into the loadout and site weights exactly as the paper does.
func Build(k *ir.Kernel, opt ir.CountOptions) (*RegionAttrs, error) {
	if opt.DefaultTrip == 0 {
		opt = ir.DefaultCountOptions()
	}
	an, err := ipda.Analyze(k, opt)
	if err != nil {
		return nil, err
	}
	l := ir.Count(k, opt)
	ra := &RegionAttrs{
		Region:    k.Name,
		Params:    append([]string(nil), k.Params...),
		IterSpace: k.IterSpace(),
		Loadout: LoadoutAttr{FPAdd: l.FPAdd, FPMul: l.FPMul, FPDiv: l.FPDiv,
			FPSpecial: l.FPSpecial, IntOps: l.IntOps, Loads: l.Loads,
			Stores: l.Stores, Branches: l.Branches},
	}
	transfer := symbolic.Zero()
	for _, a := range k.Arrays {
		if a.In {
			transfer = transfer.Add(a.Bytes())
		}
		if a.Out {
			transfer = transfer.Add(a.Bytes())
		}
	}
	ra.TransferBytes = transfer
	for _, s := range an.Sites {
		ra.Sites = append(ra.Sites, StrideAttr{
			Ref:          s.Access.Ref.String(),
			Kind:         s.Access.Kind.String(),
			Weight:       s.Access.Weight,
			Elem:         s.Access.Elem.Size(),
			Thread:       s.ThreadStride,
			ThreadAffine: s.ThreadAffine,
			Inner:        s.InnerStride,
			InnerAffine:  s.InnerAffine,
			HasInner:     s.HasInner,
			Outer:        s.OuterStride,
			OuterAffine:  s.OuterAffine,
		})
	}
	return ra, nil
}

// Resolved is the runtime-completed view of a region.
type Resolved struct {
	Region        string
	Iterations    int64
	TransferBytes int64
	Loadout       ir.Loadout
	Coalescing    ipda.CoalescingSummary
	Vectorizable  bool
}

// Resolve binds runtime parameter values and completes the record. It
// returns an error naming the first missing parameter — the compiler
// transformation must supply every value the symbolic attributes need.
func (ra *RegionAttrs) Resolve(b symbolic.Bindings, g ipda.WarpGeom) (*Resolved, error) {
	iters, err := ra.IterSpace.Eval(b)
	if err != nil {
		return nil, fmt.Errorf("attrdb: region %s: %w", ra.Region, err)
	}
	bytes, err := ra.TransferBytes.Eval(b)
	if err != nil {
		return nil, fmt.Errorf("attrdb: region %s: %w", ra.Region, err)
	}
	r := &Resolved{
		Region:        ra.Region,
		Iterations:    iters,
		TransferBytes: bytes,
		Loadout:       ra.Loadout.toLoadout(),
		Coalescing:    ipda.CoalescingSummary{Sites: map[ipda.Class]int{}},
		Vectorizable:  true,
	}
	var txWeighted float64
	anyInner := false
	for i := range ra.Sites {
		s := &ra.Sites[i]
		var wa ipda.WarpAccess
		if !s.ThreadAffine {
			wa = ipda.WarpAccess{Class: ipda.NonUniform, Transactions: g.WarpSize}
		} else {
			stride, err := s.Thread.Eval(b)
			if err != nil {
				return nil, fmt.Errorf("attrdb: region %s, site %s: %w", ra.Region, s.Ref, err)
			}
			wa = ipda.ClassifyStride(stride*s.Elem, s.Elem, g)
		}
		r.Coalescing.TotalWeight += s.Weight
		r.Coalescing.Sites[wa.Class]++
		txWeighted += s.Weight * float64(wa.Transactions)
		switch wa.Class {
		case ipda.Uniform, ipda.Coalesced:
			r.Coalescing.CoalescedWeight += s.Weight
		default:
			r.Coalescing.UncoalescedWeight += s.Weight
		}

		if s.HasInner {
			anyInner = true
			if !s.InnerAffine {
				r.Vectorizable = false
			} else if st, err := s.Inner.Eval(b); err != nil || (st != 0 && st != 1) {
				r.Vectorizable = false
			}
		}
	}
	if r.Coalescing.TotalWeight > 0 {
		r.Coalescing.AvgTransactions = txWeighted / r.Coalescing.TotalWeight
	}
	if !anyInner {
		// No sequential loops: vectorize across the thread dimension.
		for i := range ra.Sites {
			s := &ra.Sites[i]
			if !s.ThreadAffine {
				r.Vectorizable = false
				break
			}
			if st, err := s.Thread.Eval(b); err != nil || (st != 0 && st != 1) {
				r.Vectorizable = false
				break
			}
		}
	}
	return r, nil
}

// DB is a collection of region records keyed by region identifier.
type DB struct {
	Regions map[string]*RegionAttrs `json:"regions"`
}

// New returns an empty database.
func New() *DB { return &DB{Regions: map[string]*RegionAttrs{}} }

// Put stores a record.
func (db *DB) Put(ra *RegionAttrs) { db.Regions[ra.Region] = ra }

// Get fetches a record, with a descriptive error listing known regions.
func (db *DB) Get(region string) (*RegionAttrs, error) {
	if ra, ok := db.Regions[region]; ok {
		return ra, nil
	}
	known := make([]string, 0, len(db.Regions))
	for k := range db.Regions {
		known = append(known, k)
	}
	sort.Strings(known)
	return nil, fmt.Errorf("attrdb: no region %q (have %v)", region, known)
}

// Save serializes the database as JSON.
func (db *DB) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(db)
}

// Load deserializes a database written by Save.
func Load(r io.Reader) (*DB, error) {
	db := New()
	if err := json.NewDecoder(r).Decode(db); err != nil {
		return nil, fmt.Errorf("attrdb: load: %w", err)
	}
	return db, nil
}
