package attrdb

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hybridsel/hybridsel/internal/ir"
)

func snapshotKernel(t *testing.T, name string) *RegionAttrs {
	t.Helper()
	n := ir.V("n")
	k := &ir.Kernel{
		Name:   name,
		Params: []string{"n"},
		Arrays: []*ir.Array{ir.In("A", ir.F64, n), ir.Arr("B", ir.F64, n)},
		Body: []ir.Stmt{
			ir.ParFor("i", ir.N(0), n,
				ir.Store(ir.R("B", ir.V("i")), ir.Ld("A", ir.V("i")))),
		},
	}
	ra, err := Build(k, ir.DefaultCountOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ra
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := New()
	db.Put(snapshotKernel(t, "copy1"))
	db.Put(snapshotKernel(t, "copy2"))

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, NewSnapshot(db, "p9v100", "test")); err != nil {
		t.Fatal(err)
	}
	s, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != SnapshotVersion || s.Platform != "p9v100" {
		t.Fatalf("envelope = %+v", s)
	}
	if err := s.VerifyDB(db); err != nil {
		t.Fatalf("round-tripped snapshot fails verify: %v", err)
	}
	if got := len(s.DB().Regions); got != 2 {
		t.Fatalf("snapshot DB has %d regions, want 2", got)
	}
}

func TestSnapshotVerifyDetectsSkew(t *testing.T) {
	db := New()
	db.Put(snapshotKernel(t, "copy1"))
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, NewSnapshot(db, "", "")); err != nil {
		t.Fatal(err)
	}
	s, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Missing region.
	if err := s.VerifyDB(New()); err == nil {
		t.Fatal("verify passed against empty DB")
	}
	// Extra region.
	extra := New()
	extra.Put(snapshotKernel(t, "copy1"))
	extra.Put(snapshotKernel(t, "rogue"))
	if err := s.VerifyDB(extra); err == nil ||
		!strings.Contains(err.Error(), "rogue") {
		t.Fatalf("extra region not reported: %v", err)
	}
	// Mutated attributes.
	mutated := New()
	ra := snapshotKernel(t, "copy1")
	ra.Loadout.FPAdd += 1
	mutated.Put(ra)
	if err := s.VerifyDB(mutated); err == nil ||
		!strings.Contains(err.Error(), "differ") {
		t.Fatalf("mutated attributes not reported: %v", err)
	}
}

func TestReadSnapshotRejects(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader(`{"version":99,"regions":{"x":{}}}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader(`{"version":1,"regions":{}}`)); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
