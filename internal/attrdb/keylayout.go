package attrdb

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/hybridsel/hybridsel/internal/symbolic"
)

// fnvOffset64 and fnvPrime64 are the FNV-1a 64-bit parameters; Hash uses
// them inline so it can fold slot values into the digest without
// materializing the key string (hash/fnv would force a []byte write).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// KeyLayout is the sorted name layout of a region's bindings, fixed once
// at Register time. BindingsKey re-sorts the variable names on every
// call; a KeyLayout hoists the sort (and the "name=" encoding work) so
// the per-launch cost of key construction is a single string allocation,
// and hashing or comparing against a stored key allocates nothing.
//
// All methods take the values as a slot vector ordered by Slot: vals[i]
// is the value of the i-th name in sorted order. Key, AppendKey, Hash and
// MatchesKey are all defined to agree exactly with BindingsKey /
// BindingsHash over the bindings map the vector was filled from.
type KeyLayout struct {
	names    []string
	prefixes []string // prefixes[i] = (i>0 ? "," : "") + names[i] + "="
	slots    map[string]int
}

// NewKeyLayout builds the layout for the given variable names (order
// irrelevant; they are sorted internally). Duplicate or empty names are
// rejected: they would make the canonical encoding ambiguous.
func NewKeyLayout(names []string) (*KeyLayout, error) {
	sorted := make([]string, len(names))
	copy(sorted, names)
	sort.Strings(sorted)
	l := &KeyLayout{
		names:    sorted,
		prefixes: make([]string, len(sorted)),
		slots:    make(map[string]int, len(sorted)),
	}
	for i, name := range sorted {
		if name == "" {
			return nil, fmt.Errorf("attrdb: key layout: empty variable name")
		}
		if i > 0 && sorted[i-1] == name {
			return nil, fmt.Errorf("attrdb: key layout: duplicate variable %q", name)
		}
		if i > 0 {
			l.prefixes[i] = "," + name + "="
		} else {
			l.prefixes[i] = name + "="
		}
		l.slots[name] = i
	}
	return l, nil
}

// Len returns the number of variables in the layout.
func (l *KeyLayout) Len() int { return len(l.names) }

// Names returns the sorted variable names. The slice is shared; callers
// must not modify it.
func (l *KeyLayout) Names() []string { return l.names }

// Slot returns the slot index for name.
func (l *KeyLayout) Slot(name string) (int, bool) {
	i, ok := l.slots[name]
	return i, ok
}

// Fill copies b into vals (len(vals) must be >= Len) and reports whether
// b binds exactly the layout's variables — no more, no fewer. A partial
// or superset binding returns false and leaves vals unspecified; callers
// fall back to the map-based path so extra variables still influence the
// canonical key the way BindingsKey would encode them.
func (l *KeyLayout) Fill(b symbolic.Bindings, vals []int64) bool {
	if len(b) != len(l.names) {
		return false
	}
	for i, name := range l.names {
		v, ok := b[name]
		if !ok {
			return false
		}
		vals[i] = v
	}
	return true
}

// AppendKey appends the canonical key encoding of vals to dst.
func (l *KeyLayout) AppendKey(dst []byte, vals []int64) []byte {
	for i, p := range l.prefixes {
		dst = append(dst, p...)
		dst = strconv.AppendInt(dst, vals[i], 10)
	}
	return dst
}

// Key returns the canonical key for vals; identical to BindingsKey over
// the bindings map vals was filled from, at the cost of one allocation
// (the returned string).
func (l *KeyLayout) Key(vals []int64) string {
	// The scratch buffer stays on the caller's stack for typical layouts
	// (append only spills to the heap past 96 bytes), so the returned
	// string is the single allocation.
	var stack [96]byte
	return string(l.AppendKey(stack[:0], vals))
}

// Hash returns the 64-bit FNV-1a hash of the canonical key encoding
// without building the key: identical to BindingsHash over the bindings
// map vals was filled from. It allocates nothing.
func (l *KeyLayout) Hash(vals []int64) uint64 {
	var h uint64 = fnvOffset64
	var buf [20]byte
	for i, p := range l.prefixes {
		for j := 0; j < len(p); j++ {
			h = (h ^ uint64(p[j])) * fnvPrime64
		}
		d := strconv.AppendInt(buf[:0], vals[i], 10)
		for _, c := range d {
			h = (h ^ uint64(c)) * fnvPrime64
		}
	}
	return h
}

// MatchesKey reports whether key is exactly the canonical encoding of
// vals, without allocating. The sharded decision cache uses it to confirm
// a hash hit against the stored key string.
func (l *KeyLayout) MatchesKey(key string, vals []int64) bool {
	var buf [20]byte
	pos := 0
	for i, p := range l.prefixes {
		end := pos + len(p)
		if end > len(key) || key[pos:end] != p {
			return false
		}
		pos = end
		d := strconv.AppendInt(buf[:0], vals[i], 10)
		end = pos + len(d)
		if end > len(key) || key[pos:end] != string(buf[:len(d)]) {
			return false
		}
		pos = end
	}
	return pos == len(key)
}
