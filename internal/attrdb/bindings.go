package attrdb

import (
	"hash/fnv"
	"sort"
	"strconv"

	"github.com/hybridsel/hybridsel/internal/symbolic"
)

// BindingsKey returns a canonical, deterministic encoding of runtime
// bindings — the same set of name/value pairs always yields the same key,
// regardless of map iteration order. The offload runtime uses it to key
// its decision and execution memoization caches per (region, bindings).
//
// The encoding is "name=value" pairs sorted by name and joined with
// commas, e.g. "m=128,n=1100".
func BindingsKey(b symbolic.Bindings) string {
	if len(b) == 0 {
		return ""
	}
	names := make([]string, 0, len(b))
	n := 0
	for k := range b {
		names = append(names, k)
		n += len(k) + 2
	}
	sort.Strings(names)
	buf := make([]byte, 0, n+len(b)*8)
	for i, k := range names {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, k...)
		buf = append(buf, '=')
		buf = strconv.AppendInt(buf, b[k], 10)
	}
	return string(buf)
}

// BindingsHash returns a 64-bit FNV-1a hash of the canonical encoding,
// for callers that shard or index by bindings without keeping the full
// key string.
func BindingsHash(b symbolic.Bindings) uint64 {
	h := fnv.New64a()
	h.Write([]byte(BindingsKey(b)))
	return h.Sum64()
}

// KeyHash returns the 64-bit FNV-1a hash of an already-canonicalized
// bindings key, without allocating. KeyHash(BindingsKey(b)) ==
// BindingsHash(b) == KeyLayout.Hash of the matching slot values, so the
// three key paths (map bindings, key strings, slot vectors) always agree
// on cache placement.
func KeyHash(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}
