package attrdb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SnapshotVersion is the current on-disk snapshot format version.
// ReadSnapshot rejects snapshots written by a newer format.
const SnapshotVersion = 1

// Snapshot is a versioned, self-describing serialization envelope around
// a DB — the artifact a decision-service daemon loads at startup. In the
// paper the compiler embeds the attribute database in the binary; the
// snapshot is the out-of-band equivalent, letting a server verify that
// the region set it registered from source matches the database the
// "compiler" (an earlier run) produced.
type Snapshot struct {
	Version int `json:"version"`
	// Platform optionally names the machine model the attributes were
	// built for (informational; attributes are platform-independent).
	Platform string `json:"platform,omitempty"`
	// CreatedBy optionally identifies the producing tool.
	CreatedBy string                  `json:"createdBy,omitempty"`
	Regions   map[string]*RegionAttrs `json:"regions"`
}

// NewSnapshot wraps a DB in a current-version envelope. The snapshot
// aliases the DB's records; it does not copy them.
func NewSnapshot(db *DB, platform, createdBy string) *Snapshot {
	return &Snapshot{
		Version:   SnapshotVersion,
		Platform:  platform,
		CreatedBy: createdBy,
		Regions:   db.Regions,
	}
}

// DB returns the snapshot's records as a queryable database.
func (s *Snapshot) DB() *DB {
	db := New()
	for name, ra := range s.Regions {
		db.Regions[name] = ra
	}
	return db
}

// WriteSnapshot serializes the snapshot as indented JSON.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot deserializes a snapshot written by WriteSnapshot,
// rejecting unknown format versions and empty region sets.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("attrdb: snapshot: %w", err)
	}
	if s.Version <= 0 || s.Version > SnapshotVersion {
		return nil, fmt.Errorf("attrdb: snapshot version %d not supported (max %d)",
			s.Version, SnapshotVersion)
	}
	if len(s.Regions) == 0 {
		return nil, fmt.Errorf("attrdb: snapshot has no regions")
	}
	return &s, nil
}

// VerifyDB checks that every region in the snapshot exists in db with an
// identical attribute record, and that db holds no regions the snapshot
// lacks — guarding a daemon against skew between the kernels it compiled
// in and the database it was pointed at. Records are compared by their
// canonical JSON encoding (the same encoding both sides persist).
func (s *Snapshot) VerifyDB(db *DB) error {
	var names []string
	for name := range s.Regions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got, ok := db.Regions[name]
		if !ok {
			return fmt.Errorf("attrdb: snapshot region %q not registered", name)
		}
		want, err := json.Marshal(s.Regions[name])
		if err != nil {
			return fmt.Errorf("attrdb: snapshot region %q: %w", name, err)
		}
		have, err := json.Marshal(got)
		if err != nil {
			return fmt.Errorf("attrdb: region %q: %w", name, err)
		}
		if string(want) != string(have) {
			return fmt.Errorf("attrdb: region %q attributes differ from snapshot", name)
		}
	}
	for name := range db.Regions {
		if _, ok := s.Regions[name]; !ok {
			return fmt.Errorf("attrdb: registered region %q missing from snapshot", name)
		}
	}
	return nil
}
