package attrdb

import (
	"testing"

	"github.com/hybridsel/hybridsel/internal/symbolic"
)

func TestBindingsKeyDeterministic(t *testing.T) {
	// Map iteration order is randomized; the key must not be.
	b := symbolic.Bindings{"n": 1100, "m": 64, "k": 7}
	want := "k=7,m=64,n=1100"
	for i := 0; i < 32; i++ {
		c := symbolic.Bindings{}
		for k, v := range b {
			c[k] = v
		}
		if got := BindingsKey(c); got != want {
			t.Fatalf("BindingsKey = %q, want %q", got, want)
		}
	}
}

func TestBindingsKeyDistinguishes(t *testing.T) {
	cases := []symbolic.Bindings{
		nil,
		{"n": 1},
		{"n": 2},
		{"m": 1},
		{"n": 1, "m": 1},
		{"n": -1},
	}
	seen := map[string]int{}
	for i, b := range cases {
		k := BindingsKey(b)
		if j, dup := seen[k]; dup {
			t.Fatalf("cases %d and %d collide on key %q", j, i, k)
		}
		seen[k] = i
	}
	if BindingsKey(nil) != "" || BindingsKey(symbolic.Bindings{}) != "" {
		t.Fatal("empty bindings must key to the empty string")
	}
}

func TestBindingsHash(t *testing.T) {
	a := BindingsHash(symbolic.Bindings{"n": 1100, "m": 64})
	b := BindingsHash(symbolic.Bindings{"m": 64, "n": 1100})
	if a != b {
		t.Fatal("hash must be order-independent")
	}
	if a == BindingsHash(symbolic.Bindings{"n": 1100, "m": 65}) {
		t.Fatal("hash should distinguish different values")
	}
	if BindingsHash(nil) != BindingsHash(symbolic.Bindings{}) {
		t.Fatal("nil and empty must hash equal")
	}
}
