package attrdb

import (
	"testing"

	"github.com/hybridsel/hybridsel/internal/symbolic"
)

func TestKeyLayoutMatchesBindingsKey(t *testing.T) {
	cases := []struct {
		names []string
		b     symbolic.Bindings
	}{
		{[]string{"n"}, symbolic.Bindings{"n": 1100}},
		{[]string{"n", "m"}, symbolic.Bindings{"n": 9600, "m": 128}},
		{[]string{"nz", "ny", "nx"}, symbolic.Bindings{"nx": 256, "ny": 256, "nz": 256}},
		{[]string{"a", "b"}, symbolic.Bindings{"a": -17, "b": 0}},
		{[]string{}, symbolic.Bindings{}},
	}
	for _, tc := range cases {
		l, err := NewKeyLayout(tc.names)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]int64, l.Len())
		if !l.Fill(tc.b, vals) {
			t.Fatalf("Fill(%v) = false", tc.b)
		}
		wantKey := BindingsKey(tc.b)
		if got := l.Key(vals); got != wantKey {
			t.Fatalf("Key = %q, want %q", got, wantKey)
		}
		if got := string(l.AppendKey(nil, vals)); got != wantKey {
			t.Fatalf("AppendKey = %q, want %q", got, wantKey)
		}
		if got, want := l.Hash(vals), BindingsHash(tc.b); got != want {
			t.Fatalf("Hash = %#x, want %#x (key %q)", got, want, wantKey)
		}
		if !l.MatchesKey(wantKey, vals) {
			t.Fatalf("MatchesKey(%q) = false", wantKey)
		}
		if l.Len() > 0 {
			vals[0]++
			if l.MatchesKey(wantKey, vals) {
				t.Fatalf("MatchesKey(%q) = true after value change", wantKey)
			}
			vals[0]--
		}
		if l.MatchesKey(wantKey+"x", vals) {
			t.Fatal("MatchesKey with trailing garbage = true")
		}
	}
}

func TestKeyLayoutFillExactSetOnly(t *testing.T) {
	l, err := NewKeyLayout([]string{"n", "m"})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 2)
	if l.Fill(symbolic.Bindings{"n": 1}, vals) {
		t.Fatal("Fill with missing variable succeeded")
	}
	if l.Fill(symbolic.Bindings{"n": 1, "m": 2, "k": 3}, vals) {
		t.Fatal("Fill with extra variable succeeded")
	}
	if l.Fill(symbolic.Bindings{"n": 1, "k": 3}, vals) {
		t.Fatal("Fill with substituted variable succeeded")
	}
}

func TestKeyLayoutRejectsBadNames(t *testing.T) {
	if _, err := NewKeyLayout([]string{"n", "n"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewKeyLayout([]string{"n", ""}); err == nil {
		t.Fatal("empty name accepted")
	}
}

// TestKeyConstructionAllocs pins the satellite requirement: with a cached
// layout, building the canonical key costs at most one allocation (the
// returned string), and hashing or confirming a key costs none.
func TestKeyConstructionAllocs(t *testing.T) {
	l, err := NewKeyLayout([]string{"n", "m", "k"})
	if err != nil {
		t.Fatal(err)
	}
	b := symbolic.Bindings{"n": 9600, "m": 1100, "k": 128}
	vals := make([]int64, l.Len())
	key := BindingsKey(b)

	if a := testing.AllocsPerRun(100, func() {
		if !l.Fill(b, vals) {
			t.Fatal("Fill failed")
		}
		_ = l.Key(vals)
	}); a > 1 {
		t.Fatalf("Fill+Key allocs/run = %v, want <= 1", a)
	}
	if a := testing.AllocsPerRun(100, func() { _ = l.Hash(vals) }); a != 0 {
		t.Fatalf("Hash allocs/run = %v, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		if !l.MatchesKey(key, vals) {
			t.Fatal("MatchesKey failed")
		}
	}); a != 0 {
		t.Fatalf("MatchesKey allocs/run = %v, want 0", a)
	}
}
