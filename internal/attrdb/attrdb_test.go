package attrdb

import (
	"bytes"
	"testing"

	"github.com/hybridsel/hybridsel/internal/ipda"
	"github.com/hybridsel/hybridsel/internal/ir"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

func TestBuildResolveGemm(t *testing.T) {
	g, err := polybench.Get("gemm")
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Build(g.IR, ir.DefaultCountOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ra.Region != "gemm" || len(ra.Params) != 1 || ra.Params[0] != "n" {
		t.Fatalf("attrs = %+v", ra)
	}
	if len(ra.Sites) != 4 { // A, B loads; C load (beta*C) + store
		t.Fatalf("sites = %d", len(ra.Sites))
	}

	res, err := ra.Resolve(symbolic.Bindings{"n": 1100}, ipda.DefaultWarpGeom())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1100*1100 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	// 3 matrices in, C also out: 4 matrix transfers.
	if res.TransferBytes != 4*1100*1100*8 {
		t.Fatalf("transfer = %d", res.TransferBytes)
	}
	if res.Coalescing.CoalescedFraction() != 1 {
		t.Fatalf("gemm coalescing = %v", res.Coalescing)
	}
	// GEMM's inner k-loop walks a B column: not vectorizable.
	if res.Vectorizable {
		t.Fatal("gemm should not be vectorizable")
	}
	if res.Loadout.Loads == 0 || res.Loadout.FPMul == 0 {
		t.Fatalf("loadout = %+v", res.Loadout)
	}
}

func TestResolveMissingParam(t *testing.T) {
	g, _ := polybench.Get("gemm")
	ra, err := Build(g.IR, ir.DefaultCountOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ra.Resolve(nil, ipda.DefaultWarpGeom()); err == nil {
		t.Fatal("resolve without bindings accepted")
	}
}

func TestSymbolicStrideSurvivesSerialization(t *testing.T) {
	// The paper's case 2: a stride expression with a runtime unknown is
	// stored symbolically and resolved after deserialization.
	max := ir.V("max")
	k := &ir.Kernel{
		Name:   "paper",
		Params: []string{"max"},
		Arrays: []*ir.Array{ir.Arr("A", ir.F64, max.Mul(max))},
		Body: []ir.Stmt{
			ir.ParFor("a", ir.N(0), max,
				ir.Store(ir.R("A", max.Mul(ir.V("a"))), ir.F(1))),
		},
	}
	ra, err := Build(k, ir.DefaultCountOptions())
	if err != nil {
		t.Fatal(err)
	}
	db := New()
	db.Put(ra)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ra2, err := db2.Get("paper")
	if err != nil {
		t.Fatal(err)
	}
	// max=1: contiguous -> coalesced; max=1000: uncoalesced.
	r1, err := ra2.Resolve(symbolic.Bindings{"max": 1}, ipda.DefaultWarpGeom())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Coalescing.CoalescedFraction() != 1 {
		t.Fatalf("max=1: %v", r1.Coalescing)
	}
	r2, err := ra2.Resolve(symbolic.Bindings{"max": 1000}, ipda.DefaultWarpGeom())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Coalescing.CoalescedFraction() != 0 {
		t.Fatalf("max=1000: %v", r2.Coalescing)
	}
}

func TestDBSaveLoadFullSuite(t *testing.T) {
	db := New()
	for _, k := range polybench.Suite() {
		ra, err := Build(k.IR, ir.DefaultCountOptions())
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		db.Put(ra)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(db2.Regions) != len(polybench.Suite()) {
		t.Fatalf("regions = %d", len(db2.Regions))
	}
	// Every region must resolve at both dataset modes after the round
	// trip, and match a resolve from the in-memory record.
	for _, k := range polybench.Suite() {
		ra, err := db2.Get(k.Name)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []polybench.Mode{polybench.Test, polybench.Benchmark} {
			b := k.Bindings(m)
			got, err := ra.Resolve(b, ipda.DefaultWarpGeom())
			if err != nil {
				t.Fatalf("%s/%s: %v", k.Name, m, err)
			}
			orig, _ := db.Regions[k.Name].Resolve(b, ipda.DefaultWarpGeom())
			if got.Iterations != orig.Iterations ||
				got.TransferBytes != orig.TransferBytes ||
				got.Coalescing.CoalescedFraction() != orig.Coalescing.CoalescedFraction() ||
				got.Vectorizable != orig.Vectorizable {
				t.Fatalf("%s/%s: resolve differs after round trip", k.Name, m)
			}
		}
	}
}

func TestGetUnknownRegion(t *testing.T) {
	db := New()
	if _, err := db.Get("missing"); err == nil {
		t.Fatal("Get accepted unknown region")
	}
}

func TestLoadMalformed(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestResolveAgreesWithDirectIPDA(t *testing.T) {
	// The stored-attribute path must agree with running IPDA directly.
	for _, name := range []string{"mvt1", "atax2", "2dconv", "corr"} {
		k, _ := polybench.Get(name)
		b := k.Bindings(polybench.Test)
		ra, err := Build(k.IR, ir.DefaultCountOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := ra.Resolve(b, ipda.DefaultWarpGeom())
		if err != nil {
			t.Fatal(err)
		}
		an, err := ipda.Analyze(k.IR, ir.DefaultCountOptions())
		if err != nil {
			t.Fatal(err)
		}
		direct, err := an.GPUCoalescing(b, ipda.DefaultWarpGeom())
		if err != nil {
			t.Fatal(err)
		}
		if res.Coalescing.CoalescedFraction() != direct.CoalescedFraction() {
			t.Errorf("%s: attrdb %v vs direct %v", name,
				res.Coalescing.CoalescedFraction(), direct.CoalescedFraction())
		}
		if res.Vectorizable != an.Vectorizable(b) {
			t.Errorf("%s: vectorizable %v vs direct %v", name,
				res.Vectorizable, an.Vectorizable(b))
		}
	}
}
