package learn

import (
	"encoding/json"
	"fmt"
	"io"
)

// SnapshotVersion is the current snapshot format version. ReadSnapshot
// rejects snapshots written by a newer format.
const SnapshotVersion = 1

// ModelSnapshot is one model's accumulated sufficient statistics — the
// Gram matrix, moment vector and target sum-of-squares. Weights are not
// persisted: Restore re-solves them with the same fixed-order
// elimination, so a restored learner's corrections are bit-for-bit the
// originals.
type ModelSnapshot struct {
	N     uint64      `json:"n"`
	Gram  [][]float64 `json:"gram"`
	Mom   []float64   `json:"mom"`
	SumT2 float64     `json:"sumT2"`
}

// Snapshot is the versioned serialization envelope around a Learner's
// state (the attrdb snapshot pattern): hyperparameters plus every
// model's sufficient statistics. Go's JSON encoder emits map keys
// sorted, so two snapshots of identical state are byte-identical.
type Snapshot struct {
	Version     int     `json:"version"`
	MinSamples  int     `json:"minSamples"`
	Lambda      float64 `json:"lambda"`
	MaxVariance float64 `json:"maxVariance"`
	// Global holds the per-target fallback models by registry target ID;
	// Regions the per-(region, target) models.
	Global  map[string]ModelSnapshot            `json:"global"`
	Regions map[string]map[string]ModelSnapshot `json:"regions"`
}

// Snapshot captures the learner's current state.
func (l *Learner) Snapshot() *Snapshot {
	s := &Snapshot{
		Version:     SnapshotVersion,
		MinSamples:  l.cfg.MinSamples,
		Lambda:      l.cfg.Lambda,
		MaxVariance: l.cfg.MaxVariance,
		Global:      map[string]ModelSnapshot{},
		Regions:     map[string]map[string]ModelSnapshot{},
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	for id, m := range l.global {
		s.Global[id] = snapshotModel(m)
	}
	for region, rm := range l.regions {
		out := make(map[string]ModelSnapshot, len(rm))
		for id, m := range rm {
			out[id] = snapshotModel(m)
		}
		s.Regions[region] = out
	}
	return s
}

func snapshotModel(m *model) ModelSnapshot {
	ms := ModelSnapshot{
		N:     m.n,
		Gram:  make([][]float64, NumFeatures),
		Mom:   make([]float64, NumFeatures),
		SumT2: m.sumT2,
	}
	for i := 0; i < NumFeatures; i++ {
		ms.Gram[i] = make([]float64, NumFeatures)
		copy(ms.Gram[i], m.gram[i][:])
		ms.Mom[i] = m.mom[i]
	}
	return ms
}

// Restore replaces the learner's models (and hyperparameters, which the
// stored weights depend on) with the snapshot's state, re-solving every
// weight vector deterministically. The verdict/sample counters are not
// part of the state and keep counting.
func (l *Learner) Restore(s *Snapshot) error {
	if err := validateSnapshot(s); err != nil {
		return err
	}
	global := make(map[string]*model, len(s.Global))
	for id, ms := range s.Global {
		global[id] = restoreModel(ms, s.Lambda)
	}
	regions := make(map[string]map[string]*model, len(s.Regions))
	for region, rm := range s.Regions {
		out := make(map[string]*model, len(rm))
		for id, ms := range rm {
			out[id] = restoreModel(ms, s.Lambda)
		}
		regions[region] = out
	}
	l.mu.Lock()
	l.cfg.MinSamples = s.MinSamples
	l.cfg.Lambda = s.Lambda
	l.cfg.MaxVariance = s.MaxVariance
	l.global = global
	l.regions = regions
	l.mu.Unlock()
	return nil
}

func restoreModel(ms ModelSnapshot, lambda float64) *model {
	m := &model{n: ms.N, sumT2: ms.SumT2}
	for i := 0; i < NumFeatures; i++ {
		copy(m.gram[i][:], ms.Gram[i])
		m.mom[i] = ms.Mom[i]
	}
	m.solve(lambda)
	return m
}

// WriteSnapshot serializes a snapshot as indented JSON —
// deterministically, so identical state yields identical bytes.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot deserializes a snapshot written by WriteSnapshot,
// rejecting unknown format versions and malformed model dimensions.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("learn: snapshot: %w", err)
	}
	if err := validateSnapshot(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

func validateSnapshot(s *Snapshot) error {
	if s.Version <= 0 || s.Version > SnapshotVersion {
		return fmt.Errorf("learn: snapshot version %d not supported (max %d)",
			s.Version, SnapshotVersion)
	}
	if s.MinSamples <= 0 {
		return fmt.Errorf("learn: snapshot minSamples %d must be positive", s.MinSamples)
	}
	if s.Lambda <= 0 {
		return fmt.Errorf("learn: snapshot lambda %v must be positive", s.Lambda)
	}
	for id, m := range s.Global {
		if err := validateModel(m); err != nil {
			return fmt.Errorf("learn: snapshot global model %q: %w", id, err)
		}
	}
	for region, rm := range s.Regions {
		for id, m := range rm {
			if err := validateModel(m); err != nil {
				return fmt.Errorf("learn: snapshot region %q model %q: %w", region, id, err)
			}
		}
	}
	return nil
}

func validateModel(m ModelSnapshot) error {
	if m.N == 0 {
		return fmt.Errorf("zero sample count")
	}
	if len(m.Gram) != NumFeatures || len(m.Mom) != NumFeatures {
		return fmt.Errorf("want %dx%d gram and %d-vector moments, got %dx? and %d",
			NumFeatures, NumFeatures, NumFeatures, len(m.Gram), len(m.Mom))
	}
	for i, row := range m.Gram {
		if len(row) != NumFeatures {
			return fmt.Errorf("gram row %d has %d columns, want %d", i, len(row), NumFeatures)
		}
	}
	return nil
}
