package learn

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/hybridsel/hybridsel/internal/audit"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
)

// seedStream is a deterministic synthetic audit stream over a few
// regions and targets: distinct feature points with a target-dependent,
// feature-dependent residual so the models have real structure to learn.
func seedStream(points int) []struct {
	region string
	f      offload.Features
	ms     []audit.TargetMeasurement
} {
	var out []struct {
		region string
		f      offload.Features
		ms     []audit.TargetMeasurement
	}
	regions := []string{"gemm", "mvt1", "atax"}
	targets := []string{"cpu/base", "gpu/base", "gpu/prev"}
	for p := 0; p < points; p++ {
		for ri, region := range regions {
			f := offload.Features{
				Iterations:    int64(1000 * (p + 1) * (ri + 1)),
				TransferBytes: int64(8192 * (p + 2)),
				CoalescedFrac: float64(ri) / 2,
			}
			var ms []audit.TargetMeasurement
			for ti, target := range targets {
				pred := 1e-3 * float64(p+1) * float64(ti+1)
				// Structured residual: target-specific bias plus a mild
				// size dependence.
				logErr := 0.2*float64(ti-1) + 0.05*math.Log1p(float64(f.Iterations))/10
				ms = append(ms, audit.TargetMeasurement{
					Target:        target,
					PredSeconds:   pred,
					ActualSeconds: pred * math.Exp(logErr),
					LogErr:        logErr,
				})
			}
			out = append(out, struct {
				region string
				f      offload.Features
				ms     []audit.TargetMeasurement
			}{region, f, ms})
		}
	}
	return out
}

// TestDeterministicConvergence feeds two independent learners the same
// audit stream and requires bit-for-bit identical weights, state and
// corrections — the seeded-determinism guarantee record/replay rides on.
func TestDeterministicConvergence(t *testing.T) {
	a := New(Config{MinSamples: 2})
	b := New(Config{MinSamples: 2})
	stream := seedStream(6)
	for _, s := range stream {
		ca := a.ObserveVerdict(s.region, s.f, s.ms)
		cb := b.ObserveVerdict(s.region, s.f, s.ms)
		if ca != cb {
			t.Fatalf("divergent changed signal on %s", s.region)
		}
	}
	sa, sb := a.State(), b.State()
	if !statesEqual(sa, sb) {
		t.Fatalf("states diverge:\n%+v\n%+v", sa, sb)
	}
	for _, s := range stream {
		for _, m := range s.ms {
			ma, la := a.Multiplier(s.region, m.Target, m.PredSeconds, s.f)
			mb, lb := b.Multiplier(s.region, m.Target, m.PredSeconds, s.f)
			if la != lb || math.Float64bits(ma) != math.Float64bits(mb) {
				t.Fatalf("multiplier diverges for %s/%s: %v/%v vs %v/%v",
					s.region, m.Target, ma, la, mb, lb)
			}
		}
	}
	if sa.Samples == 0 || sa.Updates == 0 {
		t.Fatalf("stream absorbed nothing: %+v", sa)
	}
}

func statesEqual(a, b State) bool {
	if a.MinSamples != b.MinSamples || a.Samples != b.Samples || a.Updates != b.Updates {
		return false
	}
	eqTargets := func(x, y []TargetState) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i].Target != y[i].Target || x[i].Samples != y[i].Samples ||
				x[i].Confident != y[i].Confident ||
				math.Float64bits(x[i].Variance) != math.Float64bits(y[i].Variance) {
				return false
			}
			for j := range x[i].Weights {
				if math.Float64bits(x[i].Weights[j]) != math.Float64bits(y[i].Weights[j]) {
					return false
				}
			}
		}
		return true
	}
	if !eqTargets(a.Global, b.Global) || len(a.Regions) != len(b.Regions) {
		return false
	}
	for i := range a.Regions {
		if a.Regions[i].Region != b.Regions[i].Region ||
			!eqTargets(a.Regions[i].Targets, b.Regions[i].Targets) {
			return false
		}
	}
	return true
}

// TestConfidenceGate walks a cold model through the gate: analytical
// verdicts (with the EWMA fallback applied verbatim) below MinSamples,
// learned ones after, with the gate transition reported as a material
// change exactly once.
func TestConfidenceGate(t *testing.T) {
	cal := audit.NewCalibrator(0)
	l := New(Config{Fallback: cal, MinSamples: 3})
	region := "gemm"
	f := offload.Features{Iterations: 4000, TransferBytes: 1 << 20, CoalescedFrac: 1}
	newCands := func() []offload.Candidate {
		return []offload.Candidate{
			{Target: "cpu/base", Kind: offload.KindCPU, PredSeconds: 0.010, CalSeconds: 0.010},
			{Target: "gpu/base", Kind: offload.KindGPU, PredSeconds: 0.012, CalSeconds: 0.012},
		}
	}
	ms := []audit.TargetMeasurement{
		// CPU model is 2x optimistic here; GPU is accurate.
		{Target: "cpu/base", PredSeconds: 0.010, ActualSeconds: 0.020, LogErr: math.Log(2)},
		{Target: "gpu/base", PredSeconds: 0.012, ActualSeconds: 0.012, LogErr: 0},
	}

	// Cold learner: verdict must be analytical and bit-for-bit the EWMA
	// fallback's output.
	cands := newCands()
	want := newCands()
	cal.Observe(region, map[string]float64{"cpu/base": math.Log(2), "gpu/base": 0})
	if prov := l.CorrectFeatures(region, f, cands); prov != offload.ProvenanceAnalytical {
		t.Fatalf("cold verdict provenance = %q", prov)
	}
	cal.Correct(region, want)
	for i := range cands {
		if math.Float64bits(cands[i].CalSeconds) != math.Float64bits(want[i].CalSeconds) {
			t.Fatalf("cold verdict does not match EWMA fallback: %v vs %v",
				cands[i].CalSeconds, want[i].CalSeconds)
		}
	}

	transitions := 0
	for i := 0; i < 3; i++ {
		if l.ObserveVerdict(region, f, ms) {
			transitions++
		}
	}
	if transitions != 1 {
		t.Fatalf("gate transitions = %d, want exactly 1 (at MinSamples)", transitions)
	}

	cands = newCands()
	if prov := l.CorrectFeatures(region, f, cands); prov != offload.ProvenanceLearned {
		t.Fatalf("warm verdict provenance = %q", prov)
	}
	// Identical samples: the learned multiplier at the observed point
	// must land on exp(logErr) within float tolerance (the ridge
	// shrinkage is ~1e-6 relative through the bias term).
	mult := cands[0].CalSeconds / cands[0].PredSeconds
	if math.Abs(mult-2) > 1e-3 {
		t.Fatalf("learned CPU multiplier = %v, want ~2", mult)
	}
	gm := cands[1].CalSeconds / cands[1].PredSeconds
	if math.Abs(gm-1) > 1e-3 {
		t.Fatalf("learned GPU multiplier = %v, want ~1", gm)
	}

	// Converged: another identical verdict moves nothing materially.
	if l.ObserveVerdict(region, f, ms) {
		t.Fatal("converged learner still reports material change")
	}

	st := l.Stats()
	if st.LearnedVerdicts != 1 || st.AnalyticalVerdicts != 1 {
		t.Fatalf("verdict counters = %+v", st)
	}
	if st.ConfidentModels == 0 {
		t.Fatalf("no confident models after gate: %+v", st)
	}
}

// TestHierarchicalFallback: a cold region with a warm global model for
// its targets corrects through the global weights.
func TestHierarchicalFallback(t *testing.T) {
	l := New(Config{MinSamples: 2})
	f := offload.Features{Iterations: 1000, TransferBytes: 4096, CoalescedFrac: 0.5}
	ms := []audit.TargetMeasurement{
		{Target: "cpu/base", PredSeconds: 0.01, ActualSeconds: 0.03},
	}
	// Warm the global model through a different region.
	l.ObserveVerdict("warm1", f, ms)
	l.ObserveVerdict("warm2", f, ms)
	cands := []offload.Candidate{
		{Target: "cpu/base", Kind: offload.KindCPU, PredSeconds: 0.01, CalSeconds: 0.01},
	}
	if prov := l.CorrectFeatures("cold", f, cands); prov != offload.ProvenanceLearned {
		t.Fatalf("cold region with warm global: provenance = %q", prov)
	}
	if m := cands[0].CalSeconds / cands[0].PredSeconds; math.Abs(m-3) > 1e-2 {
		t.Fatalf("global-fallback multiplier = %v, want ~3", m)
	}
}

// TestSnapshotRoundTrip: snapshot -> write -> read -> restore must
// reproduce state, corrections and re-serialized bytes exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	l := New(Config{MinSamples: 2, Lambda: 0.5, MaxVariance: 0.9})
	stream := seedStream(5)
	for _, s := range stream {
		l.ObserveVerdict(s.region, s.f, s.ms)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, l.Snapshot()); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	s, err := ReadSnapshot(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	restored := New(Config{}) // deliberately different config: Restore adopts the snapshot's
	if err := restored.Restore(s); err != nil {
		t.Fatal(err)
	}
	if !statesEqual(stripCounters(l.State()), stripCounters(restored.State())) {
		t.Fatalf("restored state diverges:\n%+v\n%+v", l.State(), restored.State())
	}
	for _, sp := range stream {
		for _, m := range sp.ms {
			ma, la := l.Multiplier(sp.region, m.Target, m.PredSeconds, sp.f)
			mb, lb := restored.Multiplier(sp.region, m.Target, m.PredSeconds, sp.f)
			if la != lb || math.Float64bits(ma) != math.Float64bits(mb) {
				t.Fatalf("restored multiplier diverges for %s/%s", sp.region, m.Target)
			}
		}
	}
	var again bytes.Buffer
	if err := WriteSnapshot(&again, restored.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if again.String() != first {
		t.Fatal("snapshot bytes not stable across restore")
	}
}

func stripCounters(s State) State {
	s.Samples, s.Updates, s.LearnedVerdicts, s.AnalyticalVerdicts = 0, 0, 0, 0
	return s
}

// TestSnapshotRejects exercises the loader's validation.
func TestSnapshotRejects(t *testing.T) {
	cases := map[string]string{
		"future version": `{"version":99,"minSamples":3,"lambda":1}`,
		"zero version":   `{"version":0,"minSamples":3,"lambda":1}`,
		"bad minSamples": `{"version":1,"minSamples":0,"lambda":1}`,
		"bad lambda":     `{"version":1,"minSamples":3,"lambda":-1}`,
		"bad dims": `{"version":1,"minSamples":3,"lambda":1,
			"global":{"cpu/base":{"n":1,"gram":[[1]],"mom":[1],"sumT2":0}}}`,
		"zero n": `{"version":1,"minSamples":3,"lambda":1,
			"global":{"cpu/base":{"n":0,"gram":[],"mom":[],"sumT2":0}}}`,
		"not json": `{{{`,
	}
	for name, in := range cases {
		if _, err := ReadSnapshot(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestCorrectorZeroStateMatchesEWMA is the parity gate: a runtime whose
// calibrator is a zero-state Learner wrapping an EWMA fallback must
// produce bit-for-bit the decisions of a runtime calibrated by the EWMA
// alone — across the full Polybench suite, both platforms and both the
// classic and synthetic registries, with identically seeded calibrators.
func TestCorrectorZeroStateMatchesEWMA(t *testing.T) {
	platforms := []machine.Platform{machine.PlatformP9V100(), machine.PlatformP8K80()}
	for _, plat := range platforms {
		for _, regName := range []string{"classic", "synthetic"} {
			var regA, regB *offload.Registry
			if regName == "synthetic" {
				regA = offload.SyntheticTargets(plat, 0)
				regB = offload.SyntheticTargets(plat, 0)
			}
			calA := audit.NewCalibrator(0)
			calB := audit.NewCalibrator(0)
			rtA := offload.NewRuntime(offload.Config{
				Platform: plat, Targets: regA, Calibrator: calA})
			rtB := offload.NewRuntime(offload.Config{
				Platform: plat, Targets: regB,
				Calibrator: New(Config{Fallback: calB})})

			// Seed both EWMAs with an identical deterministic stream so
			// the fallback path is exercised with real corrections.
			ids := rtA.Targets().IDs()
			for ki, k := range polybench.Suite() {
				les := make(map[string]float64, len(ids))
				for ti, id := range ids {
					les[id] = float64((ki*7+ti*3)%9-4) / 10
				}
				calA.Observe(k.Name, les)
				calB.Observe(k.Name, les)
			}

			for _, k := range polybench.Suite() {
				if _, err := rtA.Register(k.IR); err != nil {
					t.Fatalf("%s: %v", k.Name, err)
				}
				if _, err := rtB.Register(k.IR); err != nil {
					t.Fatalf("%s: %v", k.Name, err)
				}
				for _, mode := range []polybench.Mode{polybench.Test, polybench.Benchmark} {
					b := k.Bindings(mode)
					outA, errA := rtA.Decide(k.Name, b)
					outB, errB := rtB.Decide(k.Name, b)
					if (errA != nil) != (errB != nil) {
						t.Fatalf("%s/%s %s %v: error mismatch: %v vs %v",
							plat.Name, regName, k.Name, mode, errA, errB)
					}
					if errA != nil {
						continue
					}
					tag := fmt.Sprintf("%s/%s %s %v", plat.Name, regName, k.Name, mode)
					if outA.TargetID != outB.TargetID || outA.Target != outB.Target ||
						outA.SplitFraction != outB.SplitFraction {
						t.Fatalf("%s: verdicts diverge: %s vs %s",
							tag, outA.TargetID, outB.TargetID)
					}
					if outB.Provenance != offload.ProvenanceAnalytical {
						t.Fatalf("%s: zero-state learner provenance = %q", tag, outB.Provenance)
					}
					if len(outA.Candidates) != len(outB.Candidates) {
						t.Fatalf("%s: candidate counts diverge", tag)
					}
					for i := range outA.Candidates {
						ca, cb := outA.Candidates[i], outB.Candidates[i]
						if ca.Target != cb.Target ||
							math.Float64bits(ca.PredSeconds) != math.Float64bits(cb.PredSeconds) ||
							math.Float64bits(ca.CalSeconds) != math.Float64bits(cb.CalSeconds) {
							t.Fatalf("%s: rank %d diverges: %+v vs %+v", tag, i, ca, cb)
						}
					}
				}
			}
		}
	}
}

// TestConcurrentUse drives observes, corrections and snapshots from many
// goroutines — meaningful under -race (wired into the check.sh race run).
func TestConcurrentUse(t *testing.T) {
	l := New(Config{MinSamples: 2})
	stream := seedStream(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f := offload.Features{Iterations: 100, TransferBytes: 100, CoalescedFrac: 1}
			for i := 0; i < 50; i++ {
				s := stream[(w+i)%len(stream)]
				l.ObserveVerdict(s.region, s.f, s.ms)
				cands := []offload.Candidate{
					{Target: "cpu/base", PredSeconds: 0.01, CalSeconds: 0.01},
					{Target: "gpu/base", PredSeconds: 0.02, CalSeconds: 0.02},
				}
				l.CorrectFeatures(s.region, f, cands)
				if i%10 == 0 {
					l.State()
					l.Stats()
					var buf bytes.Buffer
					_ = WriteSnapshot(&buf, l.Snapshot())
				}
			}
		}(w)
	}
	wg.Wait()
}
