// Package learn closes the gap the scalar EWMA calibration cannot: a
// deterministic, dependency-free online ridge regressor over analytical
// decision features, trained incrementally from audit ground truth.
//
// The EWMA calibrator (internal/audit) learns one multiplicative factor
// per (region, target) — a constant correction, blind to *where* in the
// binding space the model errs. The paper's headline weakness is exactly
// non-constant error: the analytical models are systematically biased
// where MCA is blind (the memory hierarchy), and that bias moves with
// problem size, transfer volume and access pattern. The learner
// regresses the residual ln(actual/predicted) on a fixed feature vector
// drawn from the compiled slot programs —
//
//	x = [1, ln(pred seconds), ln(1+iterations), ln(1+transfer bytes), coalesced fraction]
//
// — per (region, target), with a hierarchical fallback to per-target
// global weights for cold regions. The bias term is near-unregularized
// while the feature weights carry full ridge strength, so a young model
// behaves like the EWMA's mean-log-error seed and only grows
// feature-dependent corrections as evidence accumulates.
//
// Verdicts are confidence-gated: a decision is corrected by the learner
// only when every candidate target has a model past the sample-count and
// residual-variance thresholds; otherwise the whole verdict falls back
// to the EWMA-calibrated analytical ranking. The applied stage is
// recorded as Decision.Provenance (offload.ProvenanceLearned /
// ProvenanceAnalytical).
//
// Everything is deterministic: updates fold in arrival order, weights
// come from a fixed-order Gaussian elimination, and snapshot/restore
// (see snapshot.go) reproduces weights bit-for-bit — so record/replay
// traces stay byte-identical.
package learn

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/hybridsel/hybridsel/internal/audit"
	"github.com/hybridsel/hybridsel/internal/offload"
)

// NumFeatures is the fixed length of the regression feature vector:
// bias, ln(predicted seconds), ln(1+iterations), ln(1+transfer bytes),
// coalesced fraction.
const NumFeatures = 5

// Defaults applied by New for zero Config fields.
const (
	// DefaultMinSamples is the confidence gate's sample floor: a model
	// corrects verdicts only once it has absorbed this many ground-truth
	// observations.
	DefaultMinSamples = 3
	// DefaultLambda is the ridge strength on the feature weights. The
	// bias term is regularized by biasLambda instead, so a cold model
	// reduces to a mean-log-error correction rather than extrapolating
	// from under-determined feature weights.
	DefaultLambda = 1.0
	// DefaultMaxVariance bounds the in-sample residual variance (in
	// squared log space) a model may carry and still pass the confidence
	// gate; above it the verdict falls back to the analytical ranking.
	DefaultMaxVariance = 0.5
)

// biasLambda keeps the normal equations non-singular without materially
// shrinking the intercept.
const biasLambda = 1e-6

// changeThreshold is the relative movement of a learned correction below
// which an update is not worth invalidating memoized decisions — the
// same 1% rule the EWMA calibrator applies.
const changeThreshold = 0.01

// maxLogCorrection clamps the learned residual before exponentiation so
// a degenerate extrapolation cannot produce an overflowing multiplier.
const maxLogCorrection = 8.0

// Config parameterizes a Learner.
type Config struct {
	// Fallback, when non-nil, corrects the verdicts the confidence gate
	// rejects — the EWMA calibrator in the standard wiring, shared with
	// the auditor that feeds both. With a zero-state learner every
	// verdict delegates here, reproducing the pure EWMA behaviour
	// bit-for-bit.
	Fallback offload.Calibrator

	// MinSamples is the confidence gate's per-model sample floor
	// (0 selects DefaultMinSamples).
	MinSamples int

	// Lambda is the ridge strength on the feature weights (0 selects
	// DefaultLambda).
	Lambda float64

	// MaxVariance is the confidence gate's in-sample residual-variance
	// ceiling (0 selects DefaultMaxVariance; negative disables the
	// variance half of the gate).
	MaxVariance float64
}

// model is one (region, target) — or per-target global — ridge state:
// the Gram matrix and moment vector of the residual regression, with the
// solved weights cached. All mutation happens under the Learner's lock.
type model struct {
	n uint64
	// gram accumulates sum(x xT), mom sum(x t), sumT2 sum(t²) where
	// t = ln(actual/predicted) is the regression target.
	gram  [NumFeatures][NumFeatures]float64
	mom   [NumFeatures]float64
	sumT2 float64
	// w is the solved weight vector (valid when ok).
	w  [NumFeatures]float64
	ok bool
}

// add folds one observation and re-solves the weights (a 5x5 system —
// cheap next to the ground-truth simulation that produced the sample).
func (m *model) add(x *[NumFeatures]float64, t, lambda float64) {
	for i := 0; i < NumFeatures; i++ {
		for j := 0; j < NumFeatures; j++ {
			m.gram[i][j] += x[i] * x[j]
		}
		m.mom[i] += x[i] * t
	}
	m.sumT2 += t * t
	m.n++
	m.solve(lambda)
}

// solve recomputes w from the accumulated sums: (gram + Λ) w = mom with
// Λ = diag(biasLambda, lambda, ..., lambda), by Gaussian elimination
// with partial pivoting in fixed order — deterministic for a given
// state, so snapshot restores reproduce weights bit-for-bit.
func (m *model) solve(lambda float64) {
	var a [NumFeatures][NumFeatures + 1]float64
	for i := 0; i < NumFeatures; i++ {
		for j := 0; j < NumFeatures; j++ {
			a[i][j] = m.gram[i][j]
		}
		a[i][NumFeatures] = m.mom[i]
	}
	a[0][0] += biasLambda
	for i := 1; i < NumFeatures; i++ {
		a[i][i] += lambda
	}
	for col := 0; col < NumFeatures; col++ {
		pivot := col
		for row := col + 1; row < NumFeatures; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[pivot][col]) {
				pivot = row
			}
		}
		if a[pivot][col] == 0 {
			m.ok = false
			return
		}
		a[col], a[pivot] = a[pivot], a[col]
		for row := col + 1; row < NumFeatures; row++ {
			f := a[row][col] / a[col][col]
			for j := col; j <= NumFeatures; j++ {
				a[row][j] -= f * a[col][j]
			}
		}
	}
	for i := NumFeatures - 1; i >= 0; i-- {
		s := a[i][NumFeatures]
		for j := i + 1; j < NumFeatures; j++ {
			s -= a[i][j] * m.w[j]
		}
		m.w[i] = s / a[i][i]
	}
	m.ok = true
	for i := 0; i < NumFeatures; i++ {
		if math.IsNaN(m.w[i]) || math.IsInf(m.w[i], 0) {
			m.ok = false
			return
		}
	}
}

// residual predicts the log-space correction w·x at a feature point.
func (m *model) residual(x *[NumFeatures]float64) float64 {
	s := 0.0
	for i := 0; i < NumFeatures; i++ {
		s += m.w[i] * x[i]
	}
	return s
}

// multiplier is the clamped multiplicative correction at a feature
// point: exp(w·x), the learned counterpart of the EWMA's exp(ewma).
func (m *model) multiplier(x *[NumFeatures]float64) float64 {
	r := m.residual(x)
	if r > maxLogCorrection {
		r = maxLogCorrection
	} else if r < -maxLogCorrection {
		r = -maxLogCorrection
	}
	return math.Exp(r)
}

// variance is the in-sample residual variance SSE/n of the current
// weights, computable from the accumulated sums alone:
// SSE = sum(t²) - 2 w·mom + wᵀ gram w.
func (m *model) variance() float64 {
	if m.n == 0 || !m.ok {
		return math.Inf(1)
	}
	sse := m.sumT2
	for i := 0; i < NumFeatures; i++ {
		sse -= 2 * m.w[i] * m.mom[i]
		for j := 0; j < NumFeatures; j++ {
			sse += m.w[i] * m.gram[i][j] * m.w[j]
		}
	}
	if sse < 0 {
		sse = 0 // accumulated float error on a near-perfect fit
	}
	return sse / float64(m.n)
}

// Learner is the online residual learner. It implements
// offload.Corrector (wire as offload.Config.Calibrator) and
// audit.VerdictLearner (wire as audit.Config.Learner). Safe for
// concurrent use.
type Learner struct {
	cfg Config

	mu sync.RWMutex
	// global holds the per-target fallback models (keyed by registry
	// target ID); regions the per-(region, target) models.
	global  map[string]*model
	regions map[string]map[string]*model

	samples    atomic.Uint64
	updates    atomic.Uint64
	learned    atomic.Uint64
	analytical atomic.Uint64
}

var (
	_ offload.Corrector    = (*Learner)(nil)
	_ audit.VerdictLearner = (*Learner)(nil)
)

// New builds a learner. A zero Config is valid: defaults apply, and with
// no Fallback the analytical verdicts keep their raw model ranking.
func New(cfg Config) *Learner {
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = DefaultMinSamples
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = DefaultLambda
	}
	if cfg.MaxVariance == 0 {
		cfg.MaxVariance = DefaultMaxVariance
	}
	return &Learner{
		cfg:     cfg,
		global:  map[string]*model{},
		regions: map[string]map[string]*model{},
	}
}

// MinSamples returns the effective confidence-gate sample floor.
func (l *Learner) MinSamples() int { return l.cfg.MinSamples }

// featVec builds the fixed feature vector for one target's prediction at
// a decision point. predSeconds must be positive.
func featVec(predSeconds float64, f offload.Features) [NumFeatures]float64 {
	return [NumFeatures]float64{
		1,
		math.Log(predSeconds),
		math.Log1p(float64(f.Iterations)),
		math.Log1p(float64(f.TransferBytes)),
		f.CoalescedFrac,
	}
}

// passesGate reports whether one model clears the confidence gate.
func (l *Learner) passesGate(m *model) bool {
	if m == nil || !m.ok || m.n < uint64(l.cfg.MinSamples) {
		return false
	}
	if l.cfg.MaxVariance > 0 && m.variance() > l.cfg.MaxVariance {
		return false
	}
	return true
}

// confidentLocked resolves the model that would correct (region, target)
// — the region model when it clears the gate, else the global fallback
// when it does, else nil. Callers hold l.mu (either side).
func (l *Learner) confidentLocked(region, target string) *model {
	if rm := l.regions[region]; rm != nil {
		if m := rm[target]; l.passesGate(m) {
			return m
		}
	}
	if m := l.global[target]; l.passesGate(m) {
		return m
	}
	return nil
}

// CorrectFeatures implements offload.Corrector: when every candidate
// target has a confident model, each candidate's CalSeconds becomes
// PredSeconds times its learned multiplier and the verdict is learned;
// otherwise the whole verdict delegates to the Fallback calibrator
// (identity without one) and stays analytical. Gating is whole-verdict:
// mixing learned and EWMA-scaled seconds inside one ranking would
// compare incommensurable corrections.
func (l *Learner) CorrectFeatures(region string, f offload.Features, cands []offload.Candidate) string {
	mults := make([]float64, len(cands))
	confident := len(cands) > 0
	l.mu.RLock()
	for i := range cands {
		if cands[i].PredSeconds <= 0 {
			confident = false
			break
		}
		m := l.confidentLocked(region, cands[i].Target)
		if m == nil {
			confident = false
			break
		}
		x := featVec(cands[i].PredSeconds, f)
		mults[i] = m.multiplier(&x)
	}
	l.mu.RUnlock()
	if !confident {
		l.analytical.Add(1)
		if l.cfg.Fallback != nil {
			l.cfg.Fallback.Correct(region, cands)
		}
		return offload.ProvenanceAnalytical
	}
	for i := range cands {
		cands[i].CalSeconds = cands[i].PredSeconds * mults[i]
	}
	l.learned.Add(1)
	return offload.ProvenanceLearned
}

// Correct implements the plain offload.Calibrator half of the Corrector
// contract by delegating to the Fallback — feature-less callers get the
// analytical correction.
func (l *Learner) Correct(region string, cands []offload.Candidate) {
	if l.cfg.Fallback != nil {
		l.cfg.Fallback.Correct(region, cands)
	}
}

// ObserveVerdict implements audit.VerdictLearner: it folds every
// measured target of one audit verdict into the region's and the global
// models, in slice order (deterministic for a deterministic audit
// stream). It reports whether any learned correction at the observed
// point moved materially — including a gate transition — the signal to
// invalidate the region's memoized decisions.
func (l *Learner) ObserveVerdict(region string, f offload.Features, ms []audit.TargetMeasurement) (changed bool) {
	l.mu.Lock()
	for i := range ms {
		tm := &ms[i]
		if tm.PredSeconds <= 0 || tm.ActualSeconds <= 0 {
			continue
		}
		x := featVec(tm.PredSeconds, f)
		t := math.Log(tm.ActualSeconds / tm.PredSeconds)

		before, okBefore := l.effectiveLocked(region, tm.Target, &x)

		rm := l.regions[region]
		if rm == nil {
			rm = map[string]*model{}
			l.regions[region] = rm
		}
		m := rm[tm.Target]
		if m == nil {
			m = &model{}
			rm[tm.Target] = m
		}
		m.add(&x, t, l.cfg.Lambda)
		g := l.global[tm.Target]
		if g == nil {
			g = &model{}
			l.global[tm.Target] = g
		}
		g.add(&x, t, l.cfg.Lambda)
		l.samples.Add(1)

		after, okAfter := l.effectiveLocked(region, tm.Target, &x)
		if okBefore != okAfter {
			changed = true
		} else if okAfter && relChange(before, after) > changeThreshold {
			changed = true
		}
	}
	l.mu.Unlock()
	if changed {
		l.updates.Add(1)
	}
	return changed
}

// effectiveLocked evaluates the learned multiplier that would currently
// apply at a feature point (ok=false when the gate rejects — the EWMA
// fallback owns such verdicts, and its own >1% rule handles their
// invalidation).
func (l *Learner) effectiveLocked(region, target string, x *[NumFeatures]float64) (mult float64, ok bool) {
	m := l.confidentLocked(region, target)
	if m == nil {
		return 0, false
	}
	return m.multiplier(x), true
}

func relChange(old, new float64) float64 {
	if old <= 0 {
		return math.Inf(1)
	}
	return math.Abs(new-old) / old
}

// Multiplier returns the learned correction the learner would apply to
// one target's prediction at a feature point, and whether the verdict
// would be learned there (false: the caller should consult the EWMA
// factor instead). Used by cmd/explain and GET /v1/learn.
func (l *Learner) Multiplier(region, target string, predSeconds float64, f offload.Features) (mult float64, learned bool) {
	if predSeconds <= 0 {
		return 1, false
	}
	x := featVec(predSeconds, f)
	l.mu.RLock()
	defer l.mu.RUnlock()
	m := l.confidentLocked(region, target)
	if m == nil {
		return 1, false
	}
	return m.multiplier(&x), true
}

// Stats snapshots the learner's aggregate state for /metrics.
func (l *Learner) Stats() offload.LearnerStats {
	s := offload.LearnerStats{
		Samples:            l.samples.Load(),
		Updates:            l.updates.Load(),
		LearnedVerdicts:    l.learned.Load(),
		AnalyticalVerdicts: l.analytical.Load(),
		MinSamples:         l.cfg.MinSamples,
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	s.GlobalModels = len(l.global)
	for _, m := range l.global {
		if l.passesGate(m) {
			s.ConfidentModels++
		}
	}
	for _, rm := range l.regions {
		s.RegionModels += len(rm)
		for _, m := range rm {
			if l.passesGate(m) {
				s.ConfidentModels++
			}
		}
	}
	return s
}
