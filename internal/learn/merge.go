package learn

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Replica merge: a cluster of daemons gossips learner snapshots so any
// replica's residual models are warm for any region. Like the audit
// calibrator's MergeState, the rule below is a join semilattice over
// per-model entries — idempotent, commutative, associative — so all
// replicas converge to identical models (and identical snapshot bytes)
// once every state has reached every replica.

// modelWins reports whether the remote model should replace the local
// one under the join order: more samples win; at equal samples the
// lexically larger canonical encoding wins — arbitrary but total, so
// both sides of a tie pick the same winner.
func modelWins(local, remote ModelSnapshot) bool {
	if remote.N != local.N {
		return remote.N > local.N
	}
	lb, _ := json.Marshal(local)
	rb, _ := json.Marshal(remote)
	return bytes.Compare(rb, lb) > 0
}

// Merge folds a peer replica's snapshot into this learner: per model
// (global and per-region), the winning side's sufficient statistics are
// kept and the weights re-solved with the local lambda. Hyperparameters
// stay local. It reports whether anything changed — the signal that this
// replica's own gossiped snapshot has a new version.
func (l *Learner) Merge(s *Snapshot) (changed bool, err error) {
	if err := validateSnapshot(s); err != nil {
		return false, fmt.Errorf("learn: merge: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	lambda := l.cfg.Lambda
	mergeInto := func(dst map[string]*model, id string, ms ModelSnapshot) {
		m := dst[id]
		if m == nil {
			dst[id] = restoreModel(ms, lambda)
			changed = true
			return
		}
		if modelWins(snapshotModel(m), ms) {
			dst[id] = restoreModel(ms, lambda)
			changed = true
		}
	}
	for id, ms := range s.Global {
		mergeInto(l.global, id, ms)
	}
	for region, rm := range s.Regions {
		dst := l.regions[region]
		if dst == nil {
			dst = make(map[string]*model, len(rm))
			l.regions[region] = dst
		}
		for id, ms := range rm {
			mergeInto(dst, id, ms)
		}
	}
	return changed, nil
}

// EncodeState serializes the learner's snapshot compactly and
// deterministically for gossip. DecodeState is its inverse.
func (l *Learner) EncodeState() []byte {
	b, err := json.Marshal(l.Snapshot())
	if err != nil {
		panic("learn: marshal snapshot: " + err.Error())
	}
	return b
}

// DecodeState deserializes a snapshot encoded by EncodeState.
func DecodeState(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("learn: decode state: %w", err)
	}
	if err := validateSnapshot(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
