package learn

import (
	"bytes"
	"testing"
)

// TestLearnerMergeConverges: two replicas trained on different slices of
// the audit stream must converge to byte-identical state after a full
// bidirectional exchange — the split-brain heal property.
func TestLearnerMergeConverges(t *testing.T) {
	cfg := Config{MinSamples: 2}
	a, b := New(cfg), New(cfg)
	stream := seedStream(5)
	for i, s := range stream {
		if i%2 == 0 {
			a.ObserveVerdict(s.region, s.f, s.ms)
		} else {
			b.ObserveVerdict(s.region, s.f, s.ms)
		}
	}
	if bytes.Equal(a.EncodeState(), b.EncodeState()) {
		t.Fatal("replicas started identical; the test has no teeth")
	}

	sa, err := DecodeState(a.EncodeState())
	if err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	sb, err := DecodeState(b.EncodeState())
	if err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	if changed, err := a.Merge(sb); err != nil || !changed {
		t.Fatalf("a.Merge(b): changed=%v err=%v", changed, err)
	}
	if changed, err := b.Merge(sa); err != nil || !changed {
		t.Fatalf("b.Merge(a): changed=%v err=%v", changed, err)
	}
	ea, eb := a.EncodeState(), b.EncodeState()
	if !bytes.Equal(ea, eb) {
		t.Fatalf("post-exchange state diverges:\n a %s\n b %s", ea, eb)
	}

	// Idempotent: merging either side again changes nothing.
	if changed, err := a.Merge(sb); err != nil || changed {
		t.Fatalf("re-merge reported change: %v %v", changed, err)
	}
	// And the merged learner still answers: every model kept the side
	// with more samples, so multipliers come from real statistics.
	s := stream[0]
	m := s.ms[0]
	if mult, _ := a.Multiplier(s.region, m.Target, m.PredSeconds, s.f); mult <= 0 {
		t.Fatalf("merged learner multiplier = %v, want positive", mult)
	}
}

// TestLearnerMergeOrderIndependent: folding two remote states in either
// order yields byte-identical learners.
func TestLearnerMergeOrderIndependent(t *testing.T) {
	cfg := Config{MinSamples: 2}
	x, y := New(cfg), New(cfg)
	stream := seedStream(4)
	for i, s := range stream {
		if i%3 == 0 {
			x.ObserveVerdict(s.region, s.f, s.ms)
		} else {
			y.ObserveVerdict(s.region, s.f, s.ms)
		}
	}
	sx, _ := DecodeState(x.EncodeState())
	sy, _ := DecodeState(y.EncodeState())

	xy, yx := New(cfg), New(cfg)
	for _, s := range []*Snapshot{sx, sy} {
		if _, err := xy.Merge(s); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}
	for _, s := range []*Snapshot{sy, sx} {
		if _, err := yx.Merge(s); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}
	if !bytes.Equal(xy.EncodeState(), yx.EncodeState()) {
		t.Fatal("merge order changed the learner state")
	}
}

func TestLearnerMergeRejectsMalformed(t *testing.T) {
	l := New(Config{MinSamples: 2})
	if _, err := DecodeState([]byte(`{"version":99}`)); err == nil {
		t.Error("DecodeState accepted unsupported version")
	}
	if _, err := l.Merge(&Snapshot{Version: 1}); err == nil {
		t.Error("Merge accepted snapshot with zero hyperparameters")
	}
}
