package learn

import (
	"math"
	"sort"
)

// TargetState is one model's inspectable state, as served on /v1/learn
// and printed by cmd/explain.
type TargetState struct {
	Target  string `json:"target"`
	Samples uint64 `json:"samples"`
	// Confident reports the model clears the gate on its own (the
	// decision-time gate additionally falls back region -> global).
	Confident bool `json:"confident"`
	// Variance is the in-sample residual variance (-1 when the weights
	// are unsolved).
	Variance float64 `json:"variance"`
	// Weights is the solved weight vector over
	// [bias, ln pred, ln(1+iters), ln(1+bytes), coalesced frac].
	Weights []float64 `json:"weights"`
}

// RegionState is one region's models.
type RegionState struct {
	Region  string        `json:"region"`
	Targets []TargetState `json:"targets"`
}

// State is the learner's full inspectable state: configuration, verdict
// counters, and every model. Slices are sorted for deterministic
// serialization.
type State struct {
	MinSamples         int           `json:"minSamples"`
	Lambda             float64       `json:"lambda"`
	MaxVariance        float64       `json:"maxVariance"`
	Samples            uint64        `json:"samples"`
	Updates            uint64        `json:"updates"`
	LearnedVerdicts    uint64        `json:"learnedVerdicts"`
	AnalyticalVerdicts uint64        `json:"analyticalVerdicts"`
	Global             []TargetState `json:"global"`
	Regions            []RegionState `json:"regions"`
}

// State snapshots the learner for inspection (GET /v1/learn).
func (l *Learner) State() State {
	s := State{
		Samples:            l.samples.Load(),
		Updates:            l.updates.Load(),
		LearnedVerdicts:    l.learned.Load(),
		AnalyticalVerdicts: l.analytical.Load(),
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	s.MinSamples = l.cfg.MinSamples
	s.Lambda = l.cfg.Lambda
	s.MaxVariance = l.cfg.MaxVariance
	s.Global = l.targetStatesLocked(l.global)
	s.Regions = make([]RegionState, 0, len(l.regions))
	for region, rm := range l.regions {
		s.Regions = append(s.Regions, RegionState{
			Region:  region,
			Targets: l.targetStatesLocked(rm),
		})
	}
	sort.Slice(s.Regions, func(i, j int) bool { return s.Regions[i].Region < s.Regions[j].Region })
	return s
}

func (l *Learner) targetStatesLocked(ms map[string]*model) []TargetState {
	out := make([]TargetState, 0, len(ms))
	for id, m := range ms {
		ts := TargetState{
			Target:    id,
			Samples:   m.n,
			Confident: l.passesGate(m),
			Variance:  -1,
			Weights:   append([]float64(nil), m.w[:]...),
		}
		if v := m.variance(); !math.IsInf(v, 0) {
			ts.Variance = v
		}
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target < out[j].Target })
	return out
}
