package learn

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hybridsel/hybridsel/internal/audit"
	"github.com/hybridsel/hybridsel/internal/offload"
)

// FuzzLearnSnapshot hardens the snapshot loader: arbitrary bytes must
// never panic, and any accepted snapshot must restore cleanly and
// re-serialize stably (write -> read -> write is a fixed point).
func FuzzLearnSnapshot(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"minSamples":3,"lambda":1}`))
	f.Add([]byte(`{"version":99,"minSamples":3,"lambda":1}`))
	f.Add([]byte(`{"version":1,"minSamples":3,"lambda":1,"maxVariance":0.5,` +
		`"global":{"cpu/base":{"n":2,"gram":[[1,0,0,0,0],[0,1,0,0,0],[0,0,1,0,0],[0,0,0,1,0],[0,0,0,0,1]],` +
		`"mom":[0.1,0,0,0,0],"sumT2":0.2}},"regions":{}}`))
	f.Add([]byte(`{"version":1,"minSamples":1,"lambda":0.5,` +
		`"global":{},"regions":{"gemm":{"gpu/base":{"n":1,"gram":[[1]],"mom":[1],"sumT2":0}}}}`))
	f.Add([]byte(`{"version":1,"minSamples":2,"lambda":1e308,"maxVariance":-1,"global":{},"regions":{}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))

	// A real snapshot from a trained learner as the richest seed.
	l := New(Config{MinSamples: 2})
	fe := offload.Features{Iterations: 1 << 12, TransferBytes: 1 << 20, CoalescedFrac: 0.75}
	for i := 0; i < 4; i++ {
		l.ObserveVerdict("gemm", fe, []audit.TargetMeasurement{
			{Target: "cpu/base", PredSeconds: 0.01, ActualSeconds: 0.02},
			{Target: "gpu/base", PredSeconds: 0.02, ActualSeconds: 0.015},
		})
	}
	var seed bytes.Buffer
	if err := WriteSnapshot(&seed, l.Snapshot()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted snapshots must restore without error and round-trip
		// to stable bytes.
		lr := New(Config{})
		if err := lr.Restore(s); err != nil {
			t.Fatalf("accepted snapshot failed to restore: %v", err)
		}
		var first, second bytes.Buffer
		if err := WriteSnapshot(&first, lr.Snapshot()); err != nil {
			t.Fatal(err)
		}
		s2, err := ReadSnapshot(strings.NewReader(first.String()))
		if err != nil {
			t.Fatalf("re-read of written snapshot failed: %v", err)
		}
		lr2 := New(Config{})
		if err := lr2.Restore(s2); err != nil {
			t.Fatalf("re-restore failed: %v", err)
		}
		if err := WriteSnapshot(&second, lr2.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if first.String() != second.String() {
			t.Fatal("snapshot write->read->write is not a fixed point")
		}
	})
}
