package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// httpLatencyBuckets are the request-latency histogram bounds. Decisions
// are sub-millisecond on the cached path; executes and queueing push the
// tail out.
var httpLatencyBuckets = [...]time.Duration{
	100 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// serverMetrics is the HTTP layer's own instrumentation, alongside the
// runtime's Metrics.
type serverMetrics struct {
	inflight atomic.Int64
	shed     atomic.Uint64

	// Stream transport plane.
	streamConns     atomic.Int64  // active stream connections
	streamInflight  atomic.Int64  // streams dispatched, not yet answered
	streamRequests  atomic.Uint64 // stream request frames received
	streamWrites    atomic.Uint64 // write syscalls on stream conns
	streamCoalesced atomic.Uint64 // response frames that rode a shared write

	mu       sync.Mutex
	requests map[string]uint64 // "path\x00code" -> count

	buckets  [len(httpLatencyBuckets) + 1]atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Uint64
}

func (m *serverMetrics) observe(path string, code int, d time.Duration) {
	m.mu.Lock()
	if m.requests == nil {
		m.requests = map[string]uint64{}
	}
	m.requests[path+"\x00"+strconv.Itoa(code)]++
	m.mu.Unlock()

	if d < 0 {
		d = 0
	}
	i := 0
	for ; i < len(httpLatencyBuckets); i++ {
		if d <= httpLatencyBuckets[i] {
			break
		}
	}
	m.buckets[i].Add(1)
	m.count.Add(1)
	m.sumNanos.Add(uint64(d))
}

// write renders the server-level series in Prometheus text format,
// appended after the runtime's exposition.
func (m *serverMetrics) write(w io.Writer, s *Server) {
	fmt.Fprintf(w, "# HELP hybridseld_http_requests_total Served HTTP requests by path and status.\n")
	fmt.Fprintf(w, "# TYPE hybridseld_http_requests_total counter\n")
	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := m.requests[k]
		var path, code string
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				path, code = k[:i], k[i+1:]
				break
			}
		}
		fmt.Fprintf(w, "hybridseld_http_requests_total{path=%q,code=%q} %d\n", path, code, n)
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP hybridseld_shed_total Requests shed with 429 (admission queue full).\n")
	fmt.Fprintf(w, "# TYPE hybridseld_shed_total counter\nhybridseld_shed_total %d\n", m.shed.Load())
	fmt.Fprintf(w, "# HELP hybridseld_inflight_requests In-flight HTTP requests.\n")
	fmt.Fprintf(w, "# TYPE hybridseld_inflight_requests gauge\nhybridseld_inflight_requests %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# HELP hybridseld_admission_queue_used Admission tickets in use.\n")
	fmt.Fprintf(w, "# TYPE hybridseld_admission_queue_used gauge\nhybridseld_admission_queue_used %d\n", len(s.tickets))
	fmt.Fprintf(w, "# HELP hybridseld_admission_queue_capacity Admission ticket capacity (concurrency + queue depth).\n")
	fmt.Fprintf(w, "# TYPE hybridseld_admission_queue_capacity gauge\nhybridseld_admission_queue_capacity %d\n", cap(s.tickets))
	fmt.Fprintf(w, "# HELP hybridsel_stream_connections Active stream-transport connections.\n")
	fmt.Fprintf(w, "# TYPE hybridsel_stream_connections gauge\nhybridsel_stream_connections %d\n", m.streamConns.Load())
	fmt.Fprintf(w, "# HELP hybridsel_stream_inflight Stream requests dispatched but not yet answered.\n")
	fmt.Fprintf(w, "# TYPE hybridsel_stream_inflight gauge\nhybridsel_stream_inflight %d\n", m.streamInflight.Load())
	fmt.Fprintf(w, "# HELP hybridsel_stream_requests_total Stream request frames received.\n")
	fmt.Fprintf(w, "# TYPE hybridsel_stream_requests_total counter\nhybridsel_stream_requests_total %d\n", m.streamRequests.Load())
	fmt.Fprintf(w, "# HELP hybridsel_stream_writes_total Write syscalls on stream connections.\n")
	fmt.Fprintf(w, "# TYPE hybridsel_stream_writes_total counter\nhybridsel_stream_writes_total %d\n", m.streamWrites.Load())
	fmt.Fprintf(w, "# HELP hybridsel_stream_coalesced_total Response frames that shared a coalesced write.\n")
	fmt.Fprintf(w, "# TYPE hybridsel_stream_coalesced_total counter\nhybridsel_stream_coalesced_total %d\n", m.streamCoalesced.Load())
	fmt.Fprintf(w, "# HELP hybridseld_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE hybridseld_uptime_seconds gauge\nhybridseld_uptime_seconds %d\n", int64(time.Since(s.start).Seconds()))

	fmt.Fprintf(w, "# HELP hybridseld_http_request_seconds HTTP request latency.\n")
	fmt.Fprintf(w, "# TYPE hybridseld_http_request_seconds histogram\n")
	var cum uint64
	for i := range m.buckets {
		cum += m.buckets[i].Load()
		le := "+Inf"
		if i < len(httpLatencyBuckets) {
			le = strconv.FormatFloat(httpLatencyBuckets[i].Seconds(), 'g', -1, 64)
		}
		fmt.Fprintf(w, "hybridseld_http_request_seconds_bucket{le=%q} %d\n", le, cum)
	}
	fmt.Fprintf(w, "hybridseld_http_request_seconds_sum %s\n",
		strconv.FormatFloat(float64(m.sumNanos.Load())/1e9, 'g', -1, 64))
	fmt.Fprintf(w, "hybridseld_http_request_seconds_count %d\n", m.count.Load())
}
