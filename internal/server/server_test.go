package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/sim"
)

// testRuntime builds a cheap-simulation runtime over a few kernels.
func testRuntime(t *testing.T) *offload.Runtime {
	t.Helper()
	rt := offload.NewRuntime(offload.Config{
		Platform: machine.PlatformP9V100(),
		CPUSim:   sim.CPUConfig{SampleItems: 8, MaxLoopSample: 32},
		GPUSim:   sim.GPUConfig{SampleWarps: 2, MaxLoopSample: 32, MaxRepSample: 1},
	})
	for _, name := range []string{"gemm", "mvt1", "atax2"} {
		k, err := polybench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Register(k.IR); err != nil {
			t.Fatal(err)
		}
	}
	return rt
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Runtime == nil {
		cfg.Runtime = testRuntime(t)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postDecide(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/decide", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestDecideSingle(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postDecide(t, ts.URL, `{"region":"gemm","bindings":{"n":1100}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("missing X-Request-Id")
	}
	var d DecideResponse
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if d.Target != "cpu" && d.Target != "gpu" {
		t.Fatalf("target = %q", d.Target)
	}
	if d.PredCPUSeconds <= 0 || d.PredGPUSeconds <= 0 {
		t.Fatalf("predictions missing: %+v", d)
	}
	if d.ActualSeconds != 0 {
		t.Fatalf("decide-only response carries an executed time: %+v", d)
	}

	// Same bindings again: served from the decision cache.
	_, raw = postDecide(t, ts.URL, `{"region":"gemm","bindings":{"n":1100}}`)
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if !d.CacheHit {
		t.Fatalf("second identical decide not a cache hit: %+v", d)
	}
}

func TestDecideExecute(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postDecide(t, ts.URL, `{"region":"mvt1","bindings":{"n":96},"execute":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var d DecideResponse
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if d.ActualSeconds <= 0 {
		t.Fatalf("execute did not report a time: %+v", d)
	}
}

func TestDecideErrorsMapToStatus(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		body string
		want int
	}{
		{`{"region":"nope","bindings":{"n":8}}`, http.StatusNotFound},
		{`{"region":"gemm","bindings":{"m":8}}`, http.StatusUnprocessableEntity},
		{`{"region":"gemm","bindings":`, http.StatusBadRequest},
		{`{"bindings":{"n":8}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, raw := postDecide(t, ts.URL, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s -> %d (%s), want %d", c.body, resp.StatusCode, raw, c.want)
		}
	}
}

func TestDecideBatchCoalesces(t *testing.T) {
	rt := testRuntime(t)
	s := testServer(t, Config{Runtime: rt})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var reqs []string
	for i := 0; i < 10; i++ {
		reqs = append(reqs, `{"region":"gemm","bindings":{"n":256}}`)
	}
	reqs = append(reqs, `{"region":"mvt1","bindings":{"n":256}}`)
	reqs = append(reqs, `{"region":"nope","bindings":{"n":256}}`)
	body := `{"requests":[` + strings.Join(reqs, ",") + `]}`

	resp, raw := postDecide(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var br BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 12 {
		t.Fatalf("%d results, want 12", len(br.Results))
	}
	if br.Coalesced != 9 {
		t.Fatalf("coalesced = %d, want 9", br.Coalesced)
	}
	for i := 1; i < 10; i++ {
		if !br.Results[i].CacheHit || br.Results[i].Target == "" {
			t.Fatalf("duplicate %d not served from the coalesced decision: %+v", i, br.Results[i])
		}
	}
	if br.Results[11].Error == "" {
		t.Fatal("unknown-region item did not carry an error")
	}
	// The whole batch cost exactly two model evaluations.
	if got := rt.Metrics().Predictions; got != 2 {
		t.Fatalf("predictions = %d, want 2", got)
	}
}

func TestBatchTooLarge(t *testing.T) {
	s := testServer(t, Config{MaxBatch: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := `{"requests":[{"region":"gemm"},{"region":"gemm"},{"region":"gemm"}]}`
	resp, _ := postDecide(t, ts.URL, body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestLoadSheddingWhenQueueFull(t *testing.T) {
	s := testServer(t, Config{Concurrency: 1, QueueDepth: -1})
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s.holdForTest = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, _ := postDecide(t, ts.URL, `{"region":"gemm","bindings":{"n":64}}`)
		done <- resp.StatusCode
	}()
	<-entered // first request holds the only slot

	resp, _ := postDecide(t, ts.URL, `{"region":"gemm","bindings":{"n":64}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("held request finished %d, want 200", code)
	}
	if got := s.met.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
}

func TestQueuedRequestTimesOut(t *testing.T) {
	s := testServer(t, Config{Concurrency: 1, QueueDepth: 1,
		RequestTimeout: 50 * time.Millisecond})
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s.holdForTest = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, _ := postDecide(t, ts.URL, `{"region":"gemm","bindings":{"n":64}}`)
		done <- resp.StatusCode
	}()
	<-entered

	// Admitted into the queue, but no slot frees before the deadline.
	resp, raw := postDecide(t, ts.URL, `{"region":"gemm","bindings":{"n":64}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued status = %d (%s), want 503", resp.StatusCode, raw)
	}
	close(release)
	<-done
}

func TestConcurrentDecideStress(t *testing.T) {
	rt := testRuntime(t)
	s := testServer(t, Config{Runtime: rt})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	names := []string{"gemm", "mvt1", "atax2"}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				body := fmt.Sprintf(`{"region":%q,"bindings":{"n":%d}}`,
					names[(g+i)%3], 64+32*(i%3))
				resp, err := http.Post(ts.URL+"/v1/decide", "application/json",
					strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	m := rt.Metrics()
	if m.Decides != 160 {
		t.Fatalf("decides = %d, want 160", m.Decides)
	}
	if m.DecisionCacheHits+m.DecisionCacheMisses != 160 {
		t.Fatalf("cache accounting off: %d + %d != 160",
			m.DecisionCacheHits, m.DecisionCacheMisses)
	}
}

func TestRegionsEndpoint(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/regions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []RegionInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 || infos[0].Name != "atax2" {
		t.Fatalf("regions = %+v", infos)
	}
	for _, info := range infos {
		if len(info.Params) == 0 {
			t.Fatalf("region %s has no params", info.Name)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postDecide(t, ts.URL, `{"region":"gemm","bindings":{"n":128}}`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"hybridsel_decides_total 1",
		"hybridsel_model_eval_seconds_bucket",
		"hybridsel_model_eval_seconds_count 1",
		"hybridsel_regions 3",
		"hybridseld_http_requests_total{path=\"/v1/decide\",code=\"200\"} 1",
		"hybridseld_shed_total 0",
		"hybridseld_http_request_seconds_count",
	} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s := testServer(t, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	// Healthy while serving.
	waitHealthy(t, base, 2*time.Second)

	// Hold one request in flight, then begin draining.
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.holdForTest = func() {
		entered <- struct{}{}
		<-release
	}
	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/decide", "application/json",
			strings.NewReader(`{"region":"gemm","bindings":{"n":64}}`))
		if err != nil {
			inflight <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Give Shutdown a moment to flip the drain flag, then release the
	// in-flight request: it must complete normally.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request finished %d during drain, want 200", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve returned %v", err)
	}
}

func waitHealthy(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}

// TestResponsesCarryContentLength pins the pooled buffered-encode
// contract: every JSON response declares an exact Content-Length (so
// keep-alive connections avoid chunked framing) that matches the body
// actually sent.
func TestResponsesCarryContentLength(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postDecide(t, ts.URL, `{"region":"gemm","bindings":{"n":64}}`)
	if got := resp.Header.Get("Content-Length"); got != fmt.Sprint(len(raw)) {
		t.Fatalf("decide Content-Length = %q, body = %d bytes", got, len(raw))
	}
	for _, path := range []string{"/healthz", "/v1/regions"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("Content-Length"); got != fmt.Sprint(len(raw)) {
			t.Fatalf("%s Content-Length = %q, body = %d bytes", path, got, len(raw))
		}
	}
	// Error responses go through the same encoder.
	resp2, raw2 := postDecide(t, ts.URL, `{"region":"nope","bindings":{"n":64}}`)
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("unknown region accepted")
	}
	if got := resp2.Header.Get("Content-Length"); got != fmt.Sprint(len(raw2)) {
		t.Fatalf("error Content-Length = %q, body = %d bytes", got, len(raw2))
	}
}
