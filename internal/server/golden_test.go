package server

// Golden-file API-compatibility tests: the exact bytes of the frozen /v1
// surface (and the new /v2 surface) are locked against checked-in
// fixtures under testdata/golden. A change to any response shape fails
// here before any client sees it; run `go test ./internal/server
// -run TestGolden -update` to regenerate fixtures after an intentional,
// reviewed change.

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/hybridsel/hybridsel/internal/audit"
	"github.com/hybridsel/hybridsel/internal/learn"
	"github.com/hybridsel/hybridsel/internal/offload"
)

var update = flag.Bool("update", false, "rewrite the golden API fixtures")

// goldenLearner trains a learner on a small fixed audit stream so the
// /v1/learn fixture has real models — weights included, which pins the
// solver's determinism into the golden bytes.
func goldenLearner() *learn.Learner {
	l := learn.New(learn.Config{MinSamples: 2})
	f := offload.Features{Iterations: 4096, TransferBytes: 1 << 16, CoalescedFrac: 0.5}
	for i := 0; i < 3; i++ {
		f.Iterations += int64(i) * 1024
		l.ObserveVerdict("gemm", f, []audit.TargetMeasurement{
			{Target: "cpu/base", PredSeconds: 0.010, ActualSeconds: 0.020},
			{Target: "gpu/base", PredSeconds: 0.012, ActualSeconds: 0.012},
		})
	}
	return l
}

// nanosRe normalizes the only per-run field in a decide response: the
// wall-clock decision overhead.
var nanosRe = regexp.MustCompile(`"decisionNanos":\d+`)

func normalize(body []byte) []byte {
	return nanosRe.ReplaceAll(bytes.TrimSpace(body), []byte(`"decisionNanos":0`))
}

func TestGoldenAPICompat(t *testing.T) {
	cases := []struct {
		name   string // fixture file stem
		method string
		path   string
		body   string // "" = GET
		status int
		// wantDeprecation asserts the frozen-endpoint headers.
		wantDeprecation bool
		// learner serves the case from a server with a deterministically
		// trained residual learner configured.
		learner bool
	}{
		{name: "v1_decide_single", method: "POST", path: "/v1/decide",
			body:   `{"region":"gemm","bindings":{"n":64}}`,
			status: http.StatusOK, wantDeprecation: true},
		{name: "v1_decide_batch", method: "POST", path: "/v1/decide",
			body: `{"requests":[{"region":"gemm","bindings":{"n":64}},` +
				`{"region":"mvt1","bindings":{"n":256}},` +
				`{"region":"gemm","bindings":{"n":64}}]}`,
			status: http.StatusOK, wantDeprecation: true},
		{name: "v1_decide_item_error", method: "POST", path: "/v1/decide",
			body: `{"requests":[{"region":"gemm","bindings":{"n":64}},` +
				`{"region":"no-such-region"}]}`,
			status: http.StatusOK, wantDeprecation: true},
		{name: "v1_regions", method: "GET", path: "/v1/regions",
			status: http.StatusOK},
		{name: "v1_targets", method: "GET", path: "/v1/targets",
			status: http.StatusOK},
		// The deprecation middleware wraps the whole endpoint, so error
		// responses carry the headers too.
		{name: "err_unknown_region", method: "POST", path: "/v1/decide",
			body:   `{"region":"no-such-region"}`,
			status: http.StatusNotFound, wantDeprecation: true},
		{name: "err_bad_request", method: "POST", path: "/v1/decide",
			body:   `{not json`,
			status: http.StatusBadRequest, wantDeprecation: true},
		{name: "v2_decide_single", method: "POST", path: "/v2/decide",
			body:   `{"region":"gemm","bindings":{"n":64}}`,
			status: http.StatusOK},
		{name: "v2_decide_batch", method: "POST", path: "/v2/decide",
			body: `{"requests":[{"region":"gemm","bindings":{"n":64}},` +
				`{"region":"no-such-region"}]}`,
			status: http.StatusOK},
		{name: "v1_learn_disabled", method: "GET", path: "/v1/learn",
			status: http.StatusNotFound},
		{name: "v1_learn", method: "GET", path: "/v1/learn",
			status: http.StatusOK, learner: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A fresh server per case: fixture bytes must not depend on
			// cross-case cache state.
			cfg := Config{}
			if tc.learner {
				cfg.Learner = goldenLearner()
			}
			s := testServer(t, cfg)
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			var resp *http.Response
			var err error
			if tc.method == "GET" {
				resp, err = http.Get(ts.URL + tc.path)
			} else {
				resp, err = http.Post(ts.URL+tc.path, "application/json",
					strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			if dep := resp.Header.Get("Deprecation"); (dep == "true") != tc.wantDeprecation {
				t.Errorf("Deprecation header %q, want present=%v", dep, tc.wantDeprecation)
			}
			if tc.wantDeprecation {
				if link := resp.Header.Get("Link"); !strings.Contains(link, "successor-version") {
					t.Errorf("frozen endpoint missing successor-version Link, got %q", link)
				}
			}

			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			got := normalize(buf.Bytes())

			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(got, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, bytes.TrimSpace(want)) {
				t.Errorf("response bytes diverge from %s\n got: %s\nwant: %s",
					path, got, bytes.TrimSpace(want))
			}
		})
	}
}
