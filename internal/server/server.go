// Package server exposes an offload runtime as a network decision
// service: the paper's launch-time selector behind an HTTP/JSON API, with
// the production concerns an in-process runtime never needed — admission
// control with load shedding, per-request deadlines, batch coalescing
// through the decision cache, Prometheus metrics, structured request
// logs, and graceful drain.
//
// Endpoints:
//
//	POST /v1/decide   single or batched decision requests
//	GET  /v1/regions  the registered region set and its parameters
//	GET  /v1/audit    shadow-audit accuracy report (404 without an auditor)
//	GET  /metrics     Prometheus text exposition (runtime + server + audit)
//	GET  /healthz     liveness/readiness (503 while draining)
//
// Backpressure model: a request first claims one of QueueDepth admission
// tickets — none free means the service is saturated beyond its queue and
// the request is shed immediately with 429 and Retry-After (shedding at
// the door is what keeps the daemon deadlock-free: no request ever waits
// on an unbounded line). An admitted request then waits for one of
// Concurrency execution slots, bounded by its deadline; the wait is the
// "queue", the slots are the "workers". Every admitted request runs under
// a context deadline (RequestTimeout), so a stuck model evaluation cannot
// pin a slot forever.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hybridsel/hybridsel/internal/attrdb"
	"github.com/hybridsel/hybridsel/internal/audit"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

// Defaults applied by New for zero Config fields.
const (
	DefaultQueueDepth     = 1024
	DefaultRequestTimeout = 5 * time.Second
	DefaultMaxBatch       = 4096
)

// Config parameterizes a Server.
type Config struct {
	// Runtime is the decision runtime to serve (required).
	Runtime *offload.Runtime

	// Concurrency bounds simultaneously executing requests (the worker
	// pool). 0 selects GOMAXPROCS.
	Concurrency int
	// QueueDepth bounds admitted-but-waiting requests on top of
	// Concurrency; beyond it requests are shed with 429. 0 selects
	// DefaultQueueDepth; negative disables queueing (shed unless a
	// worker slot is immediately free).
	QueueDepth int
	// RequestTimeout is the per-request context deadline. 0 selects
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// MaxBatch caps the number of requests in one batched /v1/decide
	// body. 0 selects DefaultMaxBatch.
	MaxBatch int
	// Logger receives structured request logs (nil = slog.Default).
	Logger *slog.Logger

	// Auditor, when non-nil, is the shadow auditor observing the served
	// runtime. The server only reads from it: its accuracy accounting is
	// exposed on GET /v1/audit and folded into /metrics. Lifecycle
	// (wiring the observer, Close on drain) stays with the caller.
	Auditor *audit.Auditor
}

// Server is the HTTP decision service.
type Server struct {
	cfg     Config
	rt      *offload.Runtime
	log     *slog.Logger
	mux     *http.ServeMux
	httpSrv *http.Server

	tickets chan struct{} // admission: Concurrency + QueueDepth
	slots   chan struct{} // execution: Concurrency

	start    time.Time
	draining atomic.Bool
	reqSeq   atomic.Uint64
	met      serverMetrics

	// holdForTest, when set, runs while an execution slot is held —
	// lets tests saturate the queue deterministically.
	holdForTest func()
}

// New builds a server around a runtime. The runtime's regions may keep
// being registered concurrently; the served set is looked up per request.
func New(cfg Config) (*Server, error) {
	if cfg.Runtime == nil {
		return nil, errors.New("server: Config.Runtime is required")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = DefaultQueueDepth
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{
		cfg:     cfg,
		rt:      cfg.Runtime,
		log:     cfg.Logger,
		mux:     http.NewServeMux(),
		tickets: make(chan struct{}, cfg.Concurrency+cfg.QueueDepth),
		slots:   make(chan struct{}, cfg.Concurrency),
		start:   time.Now(),
	}
	s.mux.HandleFunc("POST /v1/decide", s.admit(s.handleDecide))
	s.mux.HandleFunc("GET /v1/regions", s.instrument(s.handleRegions))
	s.mux.HandleFunc("GET /v1/audit", s.instrument(s.handleAudit))
	s.mux.HandleFunc("GET /metrics", s.instrument(s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.instrument(s.handleHealthz))
	return s, nil
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv = &http.Server{Handler: s.mux}
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe binds addr and serves until Shutdown. The bound address
// is logged, so ":0" is usable in scripts.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.log.Info("listening", "addr", l.Addr().String())
	return s.Serve(l)
}

// Shutdown drains the server: health flips to 503 so load balancers stop
// sending, no new request is admitted, and in-flight requests run to
// completion (bounded by ctx).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Shutdown(ctx)
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// ------------------------------------------------------------ admission --

// admit wraps a handler with the full serving pipeline: request ID,
// logging, drain check, admission ticket, execution slot, deadline.
func (s *Server) admit(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return s.instrument(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Connection", "close")
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		select {
		case s.tickets <- struct{}{}:
			defer func() { <-s.tickets }()
		default:
			// Saturated beyond the queue: shed at the door.
			s.met.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "admission queue full")
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		select {
		case s.slots <- struct{}{}:
			defer func() { <-s.slots }()
		case <-ctx.Done():
			// Queued past the deadline: the client has likely given up.
			httpError(w, http.StatusServiceUnavailable, "queued past deadline")
			return
		}
		if s.holdForTest != nil {
			s.holdForTest()
		}
		h(w, r.WithContext(ctx))
	})
}

// instrument wraps a handler with request IDs, in-flight accounting,
// status capture, latency observation and a structured log line.
func (s *Server) instrument(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("%x-%06d", s.start.UnixNano()&0xffffff, s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(cw, r)
		dur := time.Since(start)
		s.met.observe(r.URL.Path, cw.code, dur)
		// Per-request lines are Debug: at 10k+ decisions/sec an Info-level
		// access log costs more than the decisions. slog skips the
		// formatting entirely when the handler level is higher.
		s.log.Debug("request",
			"id", id, "method", r.Method, "path", r.URL.Path,
			"status", cw.code, "bytes", cw.bytes,
			"dur_us", dur.Microseconds())
	}
}

// codeWriter captures the response status and size for logs and metrics.
type codeWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *codeWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// ------------------------------------------------------------- decide --

// DecideRequest is one decision query: which registered region, under
// which runtime bindings. Execute additionally dispatches the chosen
// target on the simulated platform and reports the executed time.
type DecideRequest struct {
	Region   string           `json:"region"`
	Bindings map[string]int64 `json:"bindings"`
	Execute  bool             `json:"execute,omitempty"`
}

// DecideResponse is the served decision. Error is set (and the other
// fields zero) for per-item failures inside a batch.
type DecideResponse struct {
	Region         string  `json:"region"`
	Target         string  `json:"target,omitempty"`
	PredCPUSeconds float64 `json:"predCpuSeconds,omitempty"`
	PredGPUSeconds float64 `json:"predGpuSeconds,omitempty"`
	SplitFraction  float64 `json:"splitFraction,omitempty"`
	CacheHit       bool    `json:"cacheHit,omitempty"`
	ActualSeconds  float64 `json:"actualSeconds,omitempty"`
	DecisionNanos  int64   `json:"decisionNanos,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// decideBody accepts both shapes: a single request object, or
// {"requests": [...]} for a batch.
type decideBody struct {
	DecideRequest
	Requests []DecideRequest `json:"requests"`
}

// BatchResponse is the body of a batched decide call. Coalesced counts
// duplicate (region, bindings, execute) items served from one decision.
type BatchResponse struct {
	Results   []DecideResponse `json:"results"`
	Coalesced int              `json:"coalesced"`
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	var req decideBody
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "parse body: "+err.Error())
		return
	}

	if req.Requests == nil {
		resp := s.decideOne(r.Context(), req.DecideRequest)
		if resp.Error != "" {
			httpError(w, statusForMessage(resp), resp.Error)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	if len(req.Requests) > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Requests), s.cfg.MaxBatch))
		return
	}
	results, coalesced := s.decideBatch(r.Context(), req.Requests)
	writeJSON(w, http.StatusOK, BatchResponse{Results: results, Coalesced: coalesced})
}

// decideOne serves a single decision, mapping runtime errors into the
// response's Error field.
func (s *Server) decideOne(ctx context.Context, req DecideRequest) DecideResponse {
	resp := DecideResponse{Region: req.Region}
	if req.Region == "" {
		resp.Error = "missing region"
		return resp
	}
	if err := ctx.Err(); err != nil {
		resp.Error = "deadline exceeded"
		return resp
	}
	region, err := s.rt.Region(req.Region)
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	b := symbolic.Bindings(req.Bindings)
	var out *offload.Outcome
	if req.Execute {
		out, err = region.Launch(b)
	} else {
		out, err = region.Decide(b)
	}
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	resp.Target = out.Target.String()
	resp.PredCPUSeconds = out.PredCPUSeconds
	resp.PredGPUSeconds = out.PredGPUSeconds
	resp.SplitFraction = out.SplitFraction
	resp.CacheHit = out.CacheHit
	resp.ActualSeconds = out.ActualSeconds
	resp.DecisionNanos = out.DecisionOverhead.Nanoseconds()
	return resp
}

// decideBatch serves a batch, coalescing duplicate (region, bindings,
// execute) items: each distinct key is decided once — and every decide
// after the first for a key is itself a decision-cache hit, so a batch
// of identical requests costs one model evaluation at most.
func (s *Server) decideBatch(ctx context.Context, reqs []DecideRequest) ([]DecideResponse, int) {
	type slot struct {
		resp  DecideResponse
		first int // index of the request that computed it
	}
	results := make([]DecideResponse, len(reqs))
	byKey := map[string]*slot{}
	coalesced := 0
	for i, req := range reqs {
		key := req.Region + "\x00" + attrdb.BindingsKey(symbolic.Bindings(req.Bindings))
		if req.Execute {
			key += "\x00x"
		}
		if sl, ok := byKey[key]; ok {
			resp := sl.resp
			// The duplicate was answered by the first item's decision.
			resp.CacheHit = resp.Error == ""
			results[i] = resp
			coalesced++
			continue
		}
		resp := s.decideOne(ctx, req)
		byKey[key] = &slot{resp: resp, first: i}
		results[i] = resp
	}
	return results, coalesced
}

// statusForMessage maps a failed single-decision response to an HTTP
// status via the runtime's sentinel errors.
func statusForMessage(resp DecideResponse) int {
	switch {
	case resp.Error == "missing region":
		return http.StatusBadRequest
	case resp.Error == "deadline exceeded":
		return http.StatusServiceUnavailable
	case errors.Is(sentinelOf(resp.Error), offload.ErrUnknownRegion):
		return http.StatusNotFound
	case errors.Is(sentinelOf(resp.Error), offload.ErrUnboundSymbol):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// sentinelOf recovers the runtime sentinel from a serialized error
// message. decideOne flattens errors to strings so batches can carry
// per-item failures; single responses need the status back.
func sentinelOf(msg string) error {
	for _, sentinel := range []error{offload.ErrUnknownRegion, offload.ErrUnboundSymbol} {
		if len(msg) >= len(sentinel.Error()) && msg[:len(sentinel.Error())] == sentinel.Error() {
			return sentinel
		}
	}
	return errors.New(msg)
}

// ------------------------------------------------------------- regions --

// RegionInfo is one entry of the /v1/regions listing.
type RegionInfo struct {
	Name   string   `json:"name"`
	Params []string `json:"params"`
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	names := s.rt.Regions()
	infos := make([]RegionInfo, 0, len(names))
	for _, name := range names {
		info := RegionInfo{Name: name}
		if ra, err := s.rt.DB().Get(name); err == nil {
			info.Params = ra.Params
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, infos)
}

// --------------------------------------------------------------- audit --

// handleAudit serves the shadow auditor's accuracy report: per-region
// mispredict counts, decision regret, signed log-error summaries and the
// live correction factors. 404 when the daemon runs without an auditor.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Auditor == nil {
		httpError(w, http.StatusNotFound, "auditing disabled")
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Auditor.Report())
}

// ------------------------------------------------------------- metrics --

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := s.rt.Metrics()
	var rep audit.Report
	if s.cfg.Auditor != nil {
		rep = s.cfg.Auditor.Report()
		m = rep.AddTo(m)
	}
	if err := offload.WritePrometheus(w, m); err != nil {
		return
	}
	if s.cfg.Auditor != nil {
		if err := offload.WriteAccuracyPrometheus(w, rep.Accuracy()); err != nil {
			return
		}
	}
	s.met.write(w, s)
}

// ------------------------------------------------------------- healthz --

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":        status,
		"regions":       len(s.rt.Regions()),
		"uptimeSeconds": int64(time.Since(s.start).Seconds()),
	})
}

// ------------------------------------------------------------- helpers --

// encodeBufs pools response-encoding buffers so the steady-state decide
// path does not allocate a fresh buffer (and its growth doublings) per
// response. Buffers that ballooned on a large response (a full region
// listing, a big batch) are dropped rather than pinned in the pool.
var encodeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledEncodeBuf = 64 << 10

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf := encodeBufs.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Can only happen for unmarshalable values — a programming error,
		// but the client still deserves a well-formed reply.
		encodeBufs.Put(buf)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// Buffering the encode is what makes an exact Content-Length possible,
	// which keeps keep-alive connections reusable without chunked framing.
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledEncodeBuf {
		encodeBufs.Put(buf)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	// Transient rejections — sheds and unavailability — advertise when to
	// come back, so well-behaved clients pace their retries instead of
	// hammering an overloaded or draining instance.
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	}
	writeJSON(w, code, map[string]string{"error": msg, "status": strconv.Itoa(code)})
}
