// Package server exposes an offload runtime as a network decision
// service: the paper's launch-time selector behind an HTTP/JSON API, with
// the production concerns an in-process runtime never needed — admission
// control with load shedding, per-request deadlines, batch coalescing
// through the decision cache, Prometheus metrics, structured request
// logs, and graceful drain.
//
// Endpoints:
//
//	POST /v1/decide   single or batched decision requests (deprecated in
//	                  favor of /v2/decide; response shape frozen)
//	POST /v2/decide   ranked decision requests: every registered target's
//	                  prediction, ascending by calibrated seconds
//	GET  /v1/regions  the registered region set and its parameters
//	GET  /v1/targets  the execution-target registry the runtime ranks over
//	GET  /v1/audit    shadow-audit accuracy report (404 without an auditor)
//	GET  /metrics     Prometheus text exposition (runtime + server + audit)
//	GET  /healthz     liveness/readiness (503 while draining)
//
// Error responses on every endpoint share one envelope:
//
//	{"error": {"code": "unknown_region", "message": "...", "retry_after": 1}}
//
// with machine-classifiable codes (ErrCode* constants); retry_after (in
// seconds) appears only on transient rejections (429/503), mirroring the
// Retry-After header.
//
// Backpressure model: a request first claims one of QueueDepth admission
// tickets — none free means the service is saturated beyond its queue and
// the request is shed immediately with 429 and Retry-After (shedding at
// the door is what keeps the daemon deadlock-free: no request ever waits
// on an unbounded line). An admitted request then waits for one of
// Concurrency execution slots, bounded by its deadline; the wait is the
// "queue", the slots are the "workers". Every admitted request runs under
// a context deadline (RequestTimeout), so a stuck model evaluation cannot
// pin a slot forever.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hybridsel/hybridsel/internal/attrdb"
	"github.com/hybridsel/hybridsel/internal/audit"
	"github.com/hybridsel/hybridsel/internal/cluster"
	"github.com/hybridsel/hybridsel/internal/learn"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/symbolic"
	"github.com/hybridsel/hybridsel/internal/wire"
)

// Defaults applied by New for zero Config fields.
const (
	DefaultQueueDepth     = 1024
	DefaultRequestTimeout = 5 * time.Second
	DefaultMaxBatch       = 4096
)

// Config parameterizes a Server.
type Config struct {
	// Runtime is the decision runtime to serve (required).
	Runtime *offload.Runtime

	// Concurrency bounds simultaneously executing requests (the worker
	// pool). 0 selects GOMAXPROCS.
	Concurrency int
	// QueueDepth bounds admitted-but-waiting requests on top of
	// Concurrency; beyond it requests are shed with 429. 0 selects
	// DefaultQueueDepth; negative disables queueing (shed unless a
	// worker slot is immediately free).
	QueueDepth int
	// RequestTimeout is the per-request context deadline. 0 selects
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// MaxBatch caps the number of requests in one batched /v1/decide
	// body. 0 selects DefaultMaxBatch.
	MaxBatch int
	// StreamCredit bounds in-flight streams per stream connection (the
	// flow-control window granted on connect). 0 selects
	// DefaultStreamCredit.
	StreamCredit int
	// Logger receives structured request logs (nil = slog.Default).
	Logger *slog.Logger

	// Auditor, when non-nil, is the shadow auditor observing the served
	// runtime. The server only reads from it: its accuracy accounting is
	// exposed on GET /v1/audit and folded into /metrics. Lifecycle
	// (wiring the observer, Close on drain) stays with the caller.
	Auditor *audit.Auditor

	// Learner, when non-nil, is the online residual learner correcting
	// the served runtime's rankings. The server only reads from it: its
	// models and verdict counters are exposed on GET /v1/learn and its
	// gauges folded into /metrics. Wiring (offload.Config.Calibrator,
	// the auditor's training feed) stays with the caller.
	Learner *learn.Learner

	// Cluster, when non-nil, is this replica's gossip node. The server
	// only reads from it: membership and state-replication status are
	// exposed on GET /v1/cluster and the hybridsel_cluster_* series
	// folded into /metrics. Lifecycle (the gossip loop, the gossip
	// listener) stays with the caller.
	Cluster *cluster.Node
}

// Server is the HTTP decision service.
type Server struct {
	cfg     Config
	rt      *offload.Runtime
	log     *slog.Logger
	mux     *http.ServeMux
	httpSrv *http.Server

	tickets chan struct{} // admission: Concurrency + QueueDepth
	slots   chan struct{} // execution: Concurrency

	start    time.Time
	draining atomic.Bool
	reqSeq   atomic.Uint64
	met      serverMetrics
	streams  streamRegistry

	// holdForTest, when set, runs while an execution slot is held —
	// lets tests saturate the queue deterministically.
	holdForTest func()
}

// New builds a server around a runtime. The runtime's regions may keep
// being registered concurrently; the served set is looked up per request.
func New(cfg Config) (*Server, error) {
	if cfg.Runtime == nil {
		return nil, errors.New("server: Config.Runtime is required")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.QueueDepth == 0:
		cfg.QueueDepth = DefaultQueueDepth
	case cfg.QueueDepth < 0:
		cfg.QueueDepth = 0
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{
		cfg:     cfg,
		rt:      cfg.Runtime,
		log:     cfg.Logger,
		mux:     http.NewServeMux(),
		tickets: make(chan struct{}, cfg.Concurrency+cfg.QueueDepth),
		slots:   make(chan struct{}, cfg.Concurrency),
		start:   time.Now(),
	}
	s.mux.HandleFunc("POST /v1/decide", s.admit(s.deprecated(s.handleDecideV1)))
	s.mux.HandleFunc("POST /v2/decide", s.admit(s.handleDecideV2))
	s.mux.HandleFunc("GET /v1/stream", s.handleStreamUpgrade)
	s.mux.HandleFunc("GET /v1/regions", s.instrument(s.handleRegions))
	s.mux.HandleFunc("GET /v1/targets", s.instrument(s.handleTargets))
	s.mux.HandleFunc("GET /v1/audit", s.instrument(s.handleAudit))
	s.mux.HandleFunc("GET /v1/learn", s.instrument(s.handleLearn))
	s.mux.HandleFunc("GET /metrics", s.instrument(s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.instrument(s.handleHealthz))
	if cfg.Cluster != nil {
		s.mux.HandleFunc("GET /v1/cluster", s.instrument(s.handleCluster))
	}
	return s, nil
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.httpSrv = &http.Server{Handler: s.mux}
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe binds addr and serves until Shutdown. The bound address
// is logged, so ":0" is usable in scripts.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.log.Info("listening", "addr", l.Addr().String())
	return s.Serve(l)
}

// Shutdown drains the server: health flips to 503 so load balancers stop
// sending, no new request is admitted, stream connections receive Goaway
// and finish their in-flight streams, and in-flight HTTP requests run to
// completion (all bounded by ctx).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	serr := s.shutdownStreams(ctx)
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			return err
		}
	}
	return serr
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// ------------------------------------------------------------ admission --

// admit wraps a handler with the full serving pipeline: request ID,
// logging, drain check, admission ticket, execution slot, deadline.
func (s *Server) admit(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return s.instrument(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Connection", "close")
			httpError(w, http.StatusServiceUnavailable, ErrCodeDraining, "draining")
			return
		}
		select {
		case s.tickets <- struct{}{}:
			defer func() { <-s.tickets }()
		default:
			// Saturated beyond the queue: shed at the door.
			s.met.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, ErrCodeQueueFull, "admission queue full")
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		select {
		case s.slots <- struct{}{}:
			defer func() { <-s.slots }()
		case <-ctx.Done():
			// Queued past the deadline: the client has likely given up.
			httpError(w, http.StatusServiceUnavailable, ErrCodeDeadlineExceeded, "queued past deadline")
			return
		}
		if s.holdForTest != nil {
			s.holdForTest()
		}
		h(w, r.WithContext(ctx))
	})
}

// instrument wraps a handler with request IDs, in-flight accounting,
// status capture, latency observation and a structured log line.
func (s *Server) instrument(h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("%x-%06d", s.start.UnixNano()&0xffffff, s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		cw := &codeWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(cw, r)
		dur := time.Since(start)
		s.met.observe(r.URL.Path, cw.code, dur)
		// Per-request lines are Debug: at 10k+ decisions/sec an Info-level
		// access log costs more than the decisions. slog skips the
		// formatting entirely when the handler level is higher.
		s.log.Debug("request",
			"id", id, "method", r.Method, "path", r.URL.Path,
			"status", cw.code, "bytes", cw.bytes,
			"dur_us", dur.Microseconds())
	}
}

// codeWriter captures the response status and size for logs and metrics.
type codeWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *codeWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *codeWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// ------------------------------------------------------------- decide --

// DecideRequest is one decision query: which registered region, under
// which runtime bindings. Execute additionally dispatches the chosen
// target on the simulated platform and reports the executed time.
type DecideRequest struct {
	Region   string           `json:"region"`
	Bindings map[string]int64 `json:"bindings"`
	Execute  bool             `json:"execute,omitempty"`
}

// DecideResponse is the served /v1 decision — the frozen legacy shape
// (binary CPU/GPU verdict plus the base pair's predictions). Error is
// set (and the other fields zero) for per-item failures inside a batch.
type DecideResponse struct {
	Region         string  `json:"region"`
	Target         string  `json:"target,omitempty"`
	PredCPUSeconds float64 `json:"predCpuSeconds,omitempty"`
	PredGPUSeconds float64 `json:"predGpuSeconds,omitempty"`
	SplitFraction  float64 `json:"splitFraction,omitempty"`
	CacheHit       bool    `json:"cacheHit,omitempty"`
	ActualSeconds  float64 `json:"actualSeconds,omitempty"`
	DecisionNanos  int64   `json:"decisionNanos,omitempty"`
	Error          string  `json:"error,omitempty"`
}

// DecideResponseV2 is the served /v2 decision: the ranked verdict over
// the full target registry. Verdict is the policy-chosen target's
// registry ID (top-1 of the constrained ranking; "split" for a
// cooperative split); Candidates every registered target ascending by
// calibrated predicted seconds, carrying both the raw model output
// (predSeconds) and the calibration-adjusted value the ranking used
// (calSeconds). Error is set for per-item failures inside a batch.
type DecideResponseV2 struct {
	Region string `json:"region"`
	// Verdict is the chosen target's registry ID; Kind its legacy
	// classification ("cpu"/"gpu"/"split").
	Verdict       string              `json:"verdict,omitempty"`
	Kind          string              `json:"kind,omitempty"`
	Policy        string              `json:"policy,omitempty"`
	Candidates    []offload.Candidate `json:"candidates,omitempty"`
	SplitFraction float64             `json:"splitFraction,omitempty"`
	CacheHit      bool                `json:"cacheHit,omitempty"`
	// Provenance records which correction stage produced the ranking:
	// "analytical" (models + EWMA calibration) or "learned" (a confident
	// learned residual correction).
	Provenance    string     `json:"provenance,omitempty"`
	ActualSeconds float64    `json:"actualSeconds,omitempty"`
	DecisionNanos int64      `json:"decisionNanos,omitempty"`
	Error         *ErrorInfo `json:"error,omitempty"`
}

// decideBody accepts both shapes: a single request object, or
// {"requests": [...]} for a batch.
type decideBody struct {
	DecideRequest
	Requests []DecideRequest `json:"requests"`
}

// BatchResponse is the body of a batched /v1 decide call. Coalesced
// counts duplicate (region, bindings, execute) items served from one
// decision.
type BatchResponse struct {
	Results   []DecideResponse `json:"results"`
	Coalesced int              `json:"coalesced"`
}

// BatchResponseV2 is the body of a batched /v2 decide call.
type BatchResponseV2 struct {
	Results   []DecideResponseV2 `json:"results"`
	Coalesced int                `json:"coalesced"`
}

// deprecated marks a frozen endpoint superseded by a /v2 successor:
// RFC 9745 Deprecation plus a successor-version Link. Headers only — the
// response body stays byte-identical for existing clients.
func (s *Server) deprecated(h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v2/decide>; rel="successor-version"`)
		h(w, r)
	}
}

// parseDecide reads and decodes a decide body, writing the error
// response itself when the body is unusable.
func (s *Server) parseDecide(w http.ResponseWriter, r *http.Request) (*decideBody, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, "read body: "+err.Error())
		return nil, false
	}
	var req decideBody
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, ErrCodeBadRequest, "parse body: "+err.Error())
		return nil, false
	}
	if req.Requests != nil && len(req.Requests) > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge, ErrCodeBatchTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Requests), s.cfg.MaxBatch))
		return nil, false
	}
	return &req, true
}

func (s *Server) handleDecideV1(w http.ResponseWriter, r *http.Request) {
	req, ok := s.parseDecide(w, r)
	if !ok {
		return
	}
	if req.Requests == nil {
		out, ei := s.decideOne(r.Context(), req.DecideRequest)
		if ei != nil {
			httpError(w, ei.status, ei.Code, ei.Message)
			return
		}
		writeJSON(w, http.StatusOK, v1Response(req.Region, out))
		return
	}
	results := make([]DecideResponse, len(req.Requests))
	coalesced := decideBatch(s, r.Context(), req.Requests, results,
		func(req DecideRequest, out *offload.Outcome, ei *ErrorInfo) DecideResponse {
			if ei != nil {
				return DecideResponse{Region: req.Region, Error: ei.Message}
			}
			return v1Response(req.Region, out)
		},
		func(resp DecideResponse) DecideResponse {
			// The duplicate was answered by the first item's decision.
			resp.CacheHit = resp.Error == ""
			return resp
		})
	writeJSON(w, http.StatusOK, BatchResponse{Results: results, Coalesced: coalesced})
}

func (s *Server) handleDecideV2(w http.ResponseWriter, r *http.Request) {
	// Content negotiation: a Content-Type of wire.ContentType switches
	// the whole exchange to the compact binary framing; anything else
	// stays on the default JSON path. /v1 never negotiates.
	if wire.IsFrameContent(r.Header.Get("Content-Type")) {
		s.handleDecideWire(w, r)
		return
	}
	req, ok := s.parseDecide(w, r)
	if !ok {
		return
	}
	if req.Requests == nil {
		out, ei := s.decideOne(r.Context(), req.DecideRequest)
		if ei != nil {
			httpError(w, ei.status, ei.Code, ei.Message)
			return
		}
		writeJSON(w, http.StatusOK, v2Response(req.Region, out))
		return
	}
	results := make([]DecideResponseV2, len(req.Requests))
	coalesced := decideBatch(s, r.Context(), req.Requests, results,
		func(req DecideRequest, out *offload.Outcome, ei *ErrorInfo) DecideResponseV2 {
			if ei != nil {
				return DecideResponseV2{Region: req.Region, Error: ei}
			}
			return v2Response(req.Region, out)
		},
		func(resp DecideResponseV2) DecideResponseV2 {
			resp.CacheHit = resp.Error == nil
			return resp
		})
	writeJSON(w, http.StatusOK, BatchResponseV2{Results: results, Coalesced: coalesced})
}

// v1Response projects an outcome onto the frozen /v1 shape.
func v1Response(region string, out *offload.Outcome) DecideResponse {
	return DecideResponse{
		Region:         region,
		Target:         out.Target.String(),
		PredCPUSeconds: out.PredCPUSeconds,
		PredGPUSeconds: out.PredGPUSeconds,
		SplitFraction:  out.SplitFraction,
		CacheHit:       out.CacheHit,
		ActualSeconds:  out.ActualSeconds,
		DecisionNanos:  out.DecisionOverhead.Nanoseconds(),
	}
}

// v2Response projects an outcome onto the ranked /v2 shape.
func v2Response(region string, out *offload.Outcome) DecideResponseV2 {
	return DecideResponseV2{
		Region:        region,
		Verdict:       out.TargetID,
		Kind:          out.Target.String(),
		Policy:        out.Policy.Name(),
		Candidates:    out.Candidates,
		SplitFraction: out.SplitFraction,
		CacheHit:      out.CacheHit,
		Provenance:    out.Provenance,
		ActualSeconds: out.ActualSeconds,
		DecisionNanos: out.DecisionOverhead.Nanoseconds(),
	}
}

// decideOne serves a single decision; a non-nil *ErrorInfo describes the
// failure with its classification and HTTP status.
func (s *Server) decideOne(ctx context.Context, req DecideRequest) (*offload.Outcome, *ErrorInfo) {
	if req.Region == "" {
		return nil, errInfo(http.StatusBadRequest, ErrCodeBadRequest, "missing region")
	}
	if err := ctx.Err(); err != nil {
		return nil, errInfo(http.StatusServiceUnavailable, ErrCodeDeadlineExceeded, "deadline exceeded")
	}
	region, err := s.rt.Region(req.Region)
	if err != nil {
		return nil, classify(err)
	}
	b := symbolic.Bindings(req.Bindings)
	var out *offload.Outcome
	if req.Execute {
		out, err = region.Launch(b)
	} else {
		out, err = region.Decide(b)
	}
	if err != nil {
		return nil, classify(err)
	}
	return out, nil
}

// decideBatch serves a batch, coalescing duplicate (region, bindings,
// execute) items: each distinct key is decided once — and every decide
// after the first for a key is itself a decision-cache hit, so a batch
// of identical requests costs one model evaluation at most. project
// renders one decision; dup marks a coalesced duplicate's response.
func decideBatch[R any](s *Server, ctx context.Context, reqs []DecideRequest, results []R,
	project func(DecideRequest, *offload.Outcome, *ErrorInfo) R, dup func(R) R) int {
	byKey := map[string]int{}
	coalesced := 0
	for i, req := range reqs {
		key := req.Region + "\x00" + attrdb.BindingsKey(symbolic.Bindings(req.Bindings))
		if req.Execute {
			key += "\x00x"
		}
		if first, ok := byKey[key]; ok {
			results[i] = dup(results[first])
			coalesced++
			continue
		}
		out, ei := s.decideOne(ctx, req)
		byKey[key] = i
		results[i] = project(req, out, ei)
	}
	return coalesced
}

// -------------------------------------------------------------- errors --

// Error codes carried by the unified error envelope. Clients classify on
// these instead of parsing messages.
const (
	ErrCodeBadRequest       = "bad_request"
	ErrCodeUnknownRegion    = "unknown_region"
	ErrCodeUnboundSymbol    = "unbound_symbol"
	ErrCodeDeadlineExceeded = "deadline_exceeded"
	ErrCodeQueueFull        = "queue_full"
	ErrCodeDraining         = "draining"
	ErrCodeBatchTooLarge    = "batch_too_large"
	ErrCodeNotFound         = "not_found"
	ErrCodeInternal         = "internal"
)

// ErrorInfo is the unified error body: a machine-classifiable code, a
// human-readable message, and — on transient rejections — the same
// retry hint the Retry-After header carries, in (possibly fractional)
// seconds. RetryAfter is a float so a sub-second header hint like "0.5"
// survives into the envelope instead of silently vanishing; integral
// hints still encode as bare integers ("retry_after":1), so /v1 bodies
// are byte-identical to the historical int field.
type ErrorInfo struct {
	Code       string  `json:"code"`
	Message    string  `json:"message"`
	RetryAfter float64 `json:"retry_after,omitempty"`

	// status is the HTTP status the error maps to (not serialized; the
	// envelope is self-describing through Code).
	status int `json:"-"`
}

// ErrorEnvelope wraps every non-2xx response body.
type ErrorEnvelope struct {
	Error ErrorInfo `json:"error"`
}

func errInfo(status int, code, msg string) *ErrorInfo {
	return &ErrorInfo{Code: code, Message: msg, status: status}
}

// ClassifyError maps a runtime error onto the envelope entry the daemon
// would serve for it. Exported so a degraded client (serving verdicts
// from its in-process fallback runtime) reports item-level failures with
// exactly the daemon's error codes.
func ClassifyError(err error) *ErrorInfo { return classify(err) }

// classify maps a runtime error onto its envelope entry via the
// runtime's sentinel errors.
func classify(err error) *ErrorInfo {
	switch {
	case errors.Is(err, offload.ErrUnknownRegion):
		return errInfo(http.StatusNotFound, ErrCodeUnknownRegion, err.Error())
	case errors.Is(err, offload.ErrUnboundSymbol):
		return errInfo(http.StatusUnprocessableEntity, ErrCodeUnboundSymbol, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		return errInfo(http.StatusServiceUnavailable, ErrCodeDeadlineExceeded, err.Error())
	default:
		return errInfo(http.StatusInternalServerError, ErrCodeInternal, err.Error())
	}
}

// ------------------------------------------------------------- regions --

// RegionInfo is one entry of the /v1/regions listing.
type RegionInfo struct {
	Name   string   `json:"name"`
	Params []string `json:"params"`
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	names := s.rt.Regions()
	infos := make([]RegionInfo, 0, len(names))
	for _, name := range names {
		info := RegionInfo{Name: name}
		if ra, err := s.rt.DB().Get(name); err == nil {
			info.Params = ra.Params
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, infos)
}

// ------------------------------------------------------------- targets --

// TargetInfo is one entry of the /v1/targets listing: a registered
// execution target as the ranking sees it, in registry (tie-break)
// order.
type TargetInfo struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Device names the underlying machine descriptor (CPU or GPU model
	// name); Threads is the OMP team size for CPU-kind targets.
	Device  string `json:"device,omitempty"`
	Threads int    `json:"threads,omitempty"`
}

func (s *Server) handleTargets(w http.ResponseWriter, r *http.Request) {
	reg := s.rt.Targets()
	infos := make([]TargetInfo, 0, reg.Len())
	for i := 0; i < reg.Len(); i++ {
		sp := reg.At(i)
		info := TargetInfo{ID: sp.ID, Kind: sp.Kind.String()}
		switch sp.Kind {
		case offload.KindCPU:
			info.Device = sp.CPU.Name
			info.Threads = sp.Threads
		case offload.KindGPU:
			info.Device = sp.GPU.Name
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, infos)
}

// --------------------------------------------------------------- audit --

// handleAudit serves the shadow auditor's accuracy report: per-region
// mispredict counts, decision regret, signed log-error summaries and the
// live correction factors. 404 when the daemon runs without an auditor.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Auditor == nil {
		httpError(w, http.StatusNotFound, ErrCodeNotFound, "auditing disabled")
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Auditor.Report())
}

// --------------------------------------------------------------- learn --

// handleLearn serves the residual learner's inspectable state: every
// per-(region, target) and global model's sample count, gate status and
// solved weights, plus the verdict counters. 404 when the daemon runs
// without a learner.
func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Learner == nil {
		httpError(w, http.StatusNotFound, ErrCodeNotFound, "learning disabled")
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Learner.State())
}

// ------------------------------------------------------------- metrics --

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := s.rt.Metrics()
	var rep audit.Report
	if s.cfg.Auditor != nil {
		rep = s.cfg.Auditor.Report()
		m = rep.AddTo(m)
	}
	if err := offload.WritePrometheus(w, m); err != nil {
		return
	}
	if s.cfg.Auditor != nil {
		if err := offload.WriteAccuracyPrometheus(w, rep.Accuracy()); err != nil {
			return
		}
	}
	if s.cfg.Learner != nil {
		if err := offload.WriteLearnerPrometheus(w, s.cfg.Learner.Stats()); err != nil {
			return
		}
	}
	if s.cfg.Cluster != nil {
		if err := s.cfg.Cluster.Status().WritePrometheus(w); err != nil {
			return
		}
	}
	s.met.write(w, s)
}

// ------------------------------------------------------------- cluster --

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Cluster.Status())
}

// ------------------------------------------------------------- healthz --

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":        status,
		"regions":       len(s.rt.Regions()),
		"uptimeSeconds": int64(time.Since(s.start).Seconds()),
	})
}

// ------------------------------------------------------------- helpers --

// encodeBufs pools response-encoding buffers so the steady-state decide
// path does not allocate a fresh buffer (and its growth doublings) per
// response. Buffers that ballooned on a large response (a full region
// listing, a big batch) are dropped rather than pinned in the pool.
var encodeBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledEncodeBuf = 64 << 10

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf := encodeBufs.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Can only happen for unmarshalable values — a programming error,
		// but the non-2xx contract still holds: every error body is the
		// structured envelope, so route through httpError. If the value
		// that failed to encode was itself an envelope, emit a constant
		// one instead of recursing.
		encodeBufs.Put(buf)
		if _, isEnvelope := v.(ErrorEnvelope); isEnvelope {
			const body = `{"error":{"code":"internal","message":"response encoding failed"}}` + "\n"
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.WriteHeader(http.StatusInternalServerError)
			_, _ = io.WriteString(w, body)
			return
		}
		httpError(w, http.StatusInternalServerError, ErrCodeInternal,
			"response encoding failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// Buffering the encode is what makes an exact Content-Length possible,
	// which keeps keep-alive connections reusable without chunked framing.
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledEncodeBuf {
		encodeBufs.Put(buf)
	}
}

func httpError(w http.ResponseWriter, status int, code, msg string) {
	ei := ErrorInfo{Code: code, Message: msg, RetryAfter: retryHint(w, status)}
	writeJSON(w, status, ErrorEnvelope{Error: ei})
}

// retryHint applies the transient-rejection Retry-After convention:
// sheds and unavailability (429/503) advertise when to come back, so
// well-behaved clients pace their retries instead of hammering an
// overloaded or draining instance. The hint rides in both the header
// and the body; the returned value mirrors the header verbatim as
// seconds, so a fractional hint like "0.5" set by a fault layer or
// sidecar survives into the envelope instead of being dropped by
// integer parsing (header and body must never disagree).
func retryHint(w http.ResponseWriter, status int) float64 {
	if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
		return 0
	}
	if w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", "1")
	}
	ra, err := strconv.ParseFloat(w.Header().Get("Retry-After"), 64)
	if err != nil || ra < 0 {
		return 0
	}
	return ra
}
