package server

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"github.com/hybridsel/hybridsel/internal/attrdb"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/symbolic"
	"github.com/hybridsel/hybridsel/internal/wire"
)

// This file is the binary face of POST /v2/decide: the same decisions,
// admission pipeline and error classification as the JSON path, framed
// with internal/wire instead of encoding/json. Semantics are identical
// by construction — both paths run through decideOne-shaped helpers and
// classify — and enforced by TestWireMatchesJSON. Envelope errors
// raised before negotiation (admission shedding, drain) still arrive as
// JSON; everything after the Content-Type check answers in frames.

// handleDecideWire serves a body of one or more request frames. A body
// holding exactly one TypeRequest frame mirrors the single-object JSON
// body: semantic failures surface as HTTP statuses with a TypeError
// frame. Any other mix (pipelined requests, batch frames) answers HTTP
// 200 with matching response frames in order, per-item failures riding
// inside them — the frame analogue of the JSON batch contract.
//
// The single-frame case is the hot path and stays allocation-lean: the
// body reads into a pooled buffer, exactly one frame decodes (no frame
// slice), and the response encodes into the same scratch with its
// candidate slice recycled across requests.
func (s *Server) handleDecideWire(w http.ResponseWriter, r *http.Request) {
	sc := wireScratches.Get().(*wireScratch)
	defer putWireScratch(sc)
	body, err := appendBody(sc.body[:0], w, r)
	sc.body = body
	if err != nil {
		wireError(w, http.StatusBadRequest, ErrCodeBadRequest, "read body: "+err.Error())
		return
	}
	if len(body) == 0 {
		wireError(w, http.StatusBadRequest, ErrCodeBadRequest, "decode frames: empty body")
		return
	}
	first, n, err := wire.DecodeFrame(body)
	if err != nil {
		wireError(w, http.StatusBadRequest, ErrCodeBadRequest, "decode frames: "+err.Error())
		return
	}

	if n == len(body) && first.Type == wire.TypeRequest {
		out, ei := s.decideOneWire(r.Context(), first.Req)
		if ei != nil {
			wireError(w, ei.status, ei.Code, ei.Message)
			return
		}
		resp := projectWireInto(first.Req.Region, out, nil, sc.cands[:0])
		sc.enc = wire.AppendResponse(sc.enc[:0], &resp)
		sc.cands = resp.Candidates[:0]
		writeFrames(w, http.StatusOK, sc.enc)
		return
	}

	frames := []*wire.Frame{first}
	for rest := body[n:]; len(rest) > 0; {
		fr, adv, err := wire.DecodeFrame(rest)
		if err != nil {
			wireError(w, http.StatusBadRequest, ErrCodeBadRequest, "decode frames: "+err.Error())
			return
		}
		frames = append(frames, fr)
		rest = rest[adv:]
	}
	for _, fr := range frames {
		switch fr.Type {
		case wire.TypeRequest:
		case wire.TypeBatchRequest:
			if len(fr.Reqs) > s.cfg.MaxBatch {
				wireError(w, http.StatusRequestEntityTooLarge, ErrCodeBatchTooLarge,
					fmt.Sprintf("batch of %d exceeds limit %d", len(fr.Reqs), s.cfg.MaxBatch))
				return
			}
		default:
			wireError(w, http.StatusBadRequest, ErrCodeBadRequest,
				fmt.Sprintf("unexpected frame type %d in request body", fr.Type))
			return
		}
	}

	b := sc.enc[:0]
	for _, fr := range frames {
		if fr.Type == wire.TypeRequest {
			out, ei := s.decideOneWire(r.Context(), fr.Req)
			resp := projectWire(fr.Req.Region, out, ei)
			b = wire.AppendResponse(b, &resp)
			continue
		}
		results := make([]wire.Response, len(fr.Reqs))
		coalesced := s.decideWireBatch(r.Context(), fr.Reqs, results)
		b = wire.AppendBatchResponse(b, coalesced, results)
	}
	sc.enc = b
	writeFrames(w, http.StatusOK, b)
}

// appendBody reads the request body into dst (pre-sizing from
// Content-Length when the client declared one), enforcing the same 16MB
// cap as the JSON path.
func appendBody(dst []byte, w http.ResponseWriter, r *http.Request) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, 16<<20)
	if n := r.ContentLength; n > 0 && n <= 16<<20 && int64(cap(dst)) < n {
		dst = append(make([]byte, 0, int(n)), dst...)
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := rd.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// decideOneWire is decideOne over a wire request. Slot-form bindings
// skip the map entirely on the decide path: after verifying the key
// hash (an end-to-end checksum of the client's idea of the region's
// parameter set), the values drop straight into the region's pooled
// slot vectors via DecideVals.
func (s *Server) decideOneWire(ctx context.Context, req *wire.Request) (*offload.Outcome, *ErrorInfo) {
	if req.Region == "" {
		return nil, errInfo(http.StatusBadRequest, ErrCodeBadRequest, "missing region")
	}
	if err := ctx.Err(); err != nil {
		return nil, errInfo(http.StatusServiceUnavailable, ErrCodeDeadlineExceeded, "deadline exceeded")
	}
	region, err := s.rt.Region(req.Region)
	if err != nil {
		return nil, classify(err)
	}
	if req.SlotForm {
		names := region.ParamNames()
		if len(req.Values) != len(names) {
			return nil, errInfo(http.StatusUnprocessableEntity, ErrCodeUnboundSymbol,
				fmt.Sprintf("offload: unbound symbol: region %s wants %d parameters, got %d slot values",
					req.Region, len(names), len(req.Values)))
		}
		if got := region.KeyHashVals(req.Values); got != req.KeyHash {
			return nil, errInfo(http.StatusBadRequest, ErrCodeBadRequest,
				fmt.Sprintf("slot vector key hash %#x does not match region layout (%#x): client and server disagree on %s's parameter set",
					req.KeyHash, got, req.Region))
		}
		if !req.Execute {
			out, err := region.DecideVals(req.Values)
			if err != nil {
				return nil, classify(err)
			}
			return out, nil
		}
		// Execution still wants the map form (Launch logs bindings).
		b := make(symbolic.Bindings, len(names))
		for i, name := range names {
			b[name] = req.Values[i]
		}
		out, err := region.Launch(b)
		if err != nil {
			return nil, classify(err)
		}
		return out, nil
	}
	b := make(symbolic.Bindings, len(req.Values))
	for i, name := range req.Names {
		b[name] = req.Values[i]
	}
	var out *offload.Outcome
	if req.Execute {
		out, err = region.Launch(b)
	} else {
		out, err = region.Decide(b)
	}
	if err != nil {
		return nil, classify(err)
	}
	return out, nil
}

// decideWireBatch mirrors decideBatch's coalescing contract over wire
// requests: duplicate (region, bindings, execute) items are answered by
// the first item's decision and marked CacheHit.
func (s *Server) decideWireBatch(ctx context.Context, reqs []wire.Request, results []wire.Response) int {
	byKey := map[string]int{}
	coalesced := 0
	var keyBuf []byte
	for i := range reqs {
		keyBuf = wireCoalesceKey(keyBuf[:0], &reqs[i])
		key := string(keyBuf)
		if first, ok := byKey[key]; ok {
			results[i] = results[first]
			results[i].CacheHit = results[i].Err == nil
			coalesced++
			continue
		}
		out, ei := s.decideOneWire(ctx, &reqs[i])
		byKey[key] = i
		results[i] = projectWire(reqs[i].Region, out, ei)
	}
	return coalesced
}

// wireCoalesceKey builds the duplicate-detection key for one request.
// Slot-form values are already canonical (sorted-name order), so their
// raw encoding is the key; named form canonicalizes through
// attrdb.BindingsKey exactly like the JSON batch path.
func wireCoalesceKey(dst []byte, req *wire.Request) []byte {
	dst = append(dst, req.Region...)
	dst = append(dst, 0)
	if req.Execute {
		dst = append(dst, 'x')
	}
	dst = append(dst, 0)
	if req.SlotForm {
		dst = append(dst, 's')
		for _, v := range req.Values {
			dst = binary.AppendVarint(dst, v)
		}
		return dst
	}
	b := make(symbolic.Bindings, len(req.Values))
	for i, name := range req.Names {
		b[name] = req.Values[i]
	}
	return append(dst, attrdb.BindingsKey(b)...)
}

// projectWire renders one outcome (or per-item failure) as a response
// payload, mirroring v2Response field for field.
func projectWire(region string, out *offload.Outcome, ei *ErrorInfo) wire.Response {
	return projectWireInto(region, out, ei, nil)
}

// projectWireInto is projectWire with a caller-recycled candidate
// slice: hot paths (single-frame HTTP, stream workers) hand back the
// previous response's slice so steady state does not allocate one per
// decision. The returned Response aliases cands.
func projectWireInto(region string, out *offload.Outcome, ei *ErrorInfo, cands []wire.Candidate) wire.Response {
	if ei != nil {
		return wire.Response{Region: region, Err: &wire.Error{
			Code: ei.Code, Message: ei.Message, RetryAfterSeconds: ei.RetryAfter,
		}}
	}
	d := &out.Decision
	resp := wire.Response{
		Region:        region,
		Verdict:       d.TargetID,
		Kind:          d.Target.String(),
		Policy:        d.Policy.Name(),
		Provenance:    d.Provenance,
		SplitFraction: d.SplitFraction,
		CacheHit:      d.CacheHit,
		ActualSeconds: d.ActualSeconds,
		DecisionNanos: d.DecisionOverhead.Nanoseconds(),
	}
	if len(d.Candidates) > 0 {
		for i := range d.Candidates {
			c := &d.Candidates[i]
			cands = append(cands, wire.Candidate{
				Target:      c.Target,
				Kind:        c.Kind.String(),
				PredSeconds: c.PredSeconds,
				CalSeconds:  c.CalSeconds,
			})
		}
		resp.Candidates = cands
	}
	return resp
}

// frameBufs pools response frame buffers, the binary analogue of
// encodeBufs: steady-state responses encode into a recycled slice and
// ship with an exact Content-Length.
var frameBufs = sync.Pool{New: func() any { b := make([]byte, 0, 2048); return &b }}

func putFrameBuf(buf *[]byte, b []byte) {
	if cap(b) <= maxPooledEncodeBuf {
		*buf = b[:0]
		frameBufs.Put(buf)
	}
}

// wireScratch is the per-request working set of the binary decide
// path: body read buffer, response encode buffer, and the candidate
// slice recycled between single-frame responses.
type wireScratch struct {
	body  []byte
	enc   []byte
	cands []wire.Candidate
}

var wireScratches = sync.Pool{New: func() any {
	return &wireScratch{
		body: make([]byte, 0, 2048),
		enc:  make([]byte, 0, 2048),
	}
}}

func putWireScratch(sc *wireScratch) {
	if cap(sc.body) > maxPooledEncodeBuf || cap(sc.enc) > maxPooledEncodeBuf {
		return
	}
	wireScratches.Put(sc)
}

func writeFrames(w http.ResponseWriter, code int, b []byte) {
	w.Header().Set("Content-Type", wire.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(code)
	_, _ = w.Write(b)
}

// wireError is httpError in frames: the same status, stable code and
// Retry-After conventions, delivered as a TypeError frame.
func wireError(w http.ResponseWriter, status int, code, msg string) {
	e := wire.Error{Status: status, Code: code, Message: msg, RetryAfterSeconds: retryHint(w, status)}
	buf := frameBufs.Get().(*[]byte)
	b := wire.AppendError((*buf)[:0], &e)
	writeFrames(w, status, b)
	putFrameBuf(buf, b)
}
