package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"

	"github.com/hybridsel/hybridsel/internal/attrdb"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/regiongen"
	"github.com/hybridsel/hybridsel/internal/symbolic"
	"github.com/hybridsel/hybridsel/internal/wire"
)

func postWire(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v2/decide", wire.ContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// wireReqFor builds the slot-form wire request for bindings b.
func wireReqFor(region string, b symbolic.Bindings) wire.Request {
	names := make([]string, 0, len(b))
	for k := range b {
		names = append(names, k)
	}
	sort.Strings(names)
	vals := make([]int64, len(names))
	for i, n := range names {
		vals[i] = b[n]
	}
	return wire.Request{Region: region, SlotForm: true, KeyHash: attrdb.BindingsHash(b), Values: vals}
}

func namedReqFor(region string, b symbolic.Bindings) wire.Request {
	req := wireReqFor(region, b)
	names := make([]string, 0, len(b))
	for k := range b {
		names = append(names, k)
	}
	sort.Strings(names)
	return wire.Request{Region: region, Names: names, Values: req.Values}
}

// wireToV2 projects a decoded wire response back onto the JSON shape so
// the equality tests compare like with like.
func wireToV2(t *testing.T, resp *wire.Response) DecideResponseV2 {
	t.Helper()
	out := DecideResponseV2{
		Region:        resp.Region,
		Verdict:       resp.Verdict,
		Kind:          resp.Kind,
		Policy:        resp.Policy,
		SplitFraction: resp.SplitFraction,
		CacheHit:      resp.CacheHit,
		Provenance:    resp.Provenance,
		ActualSeconds: resp.ActualSeconds,
		DecisionNanos: resp.DecisionNanos,
	}
	if resp.Err != nil {
		out.Error = &ErrorInfo{Code: resp.Err.Code, Message: resp.Err.Message, RetryAfter: resp.Err.RetryAfterSeconds}
	}
	for _, c := range resp.Candidates {
		var kind offload.TargetKind
		if err := kind.UnmarshalJSON([]byte(`"` + c.Kind + `"`)); err != nil {
			t.Fatalf("candidate kind %q: %v", c.Kind, err)
		}
		out.Candidates = append(out.Candidates, offload.Candidate{
			Target: c.Target, Kind: kind, PredSeconds: c.PredSeconds, CalSeconds: c.CalSeconds,
		})
	}
	return out
}

// normalizeV2 strips the fields that legitimately differ between two
// fresh servers answering the same request (wall-clock decision time).
func normalizeV2(r DecideResponseV2) DecideResponseV2 {
	r.DecisionNanos = 0
	if r.Error != nil {
		// Messages may phrase the same failure differently across
		// protocols; the contract is the code.
		e := *r.Error
		e.Message = ""
		r.Error = &e
	}
	return r
}

// TestWireMatchesJSON is the acceptance property: over random generated
// regions and the Polybench set, the binary /v2/decide path produces
// semantically identical verdicts to the JSON path — same ranked
// candidates, provenance, cache-hit behaviour and error codes. Two
// identically configured servers (fresh runtimes) see the same request
// sequence, one per protocol, so cache state evolves in lockstep.
func TestWireMatchesJSON(t *testing.T) {
	newServer := func() *Server {
		rt := offload.NewRuntime(offload.Config{Platform: machine.PlatformP9V100(), Threads: 4})
		r := rand.New(rand.NewSource(7))
		for trial := 0; trial < 8; trial++ {
			s := regiongen.NewShape(r)
			k := s.Build(fmt.Sprintf("gen-%03d", trial), 0, 0)
			if err := k.Validate(); err != nil {
				t.Fatalf("shape %v: %v", s, err)
			}
			if _, err := rt.Register(k); err != nil {
				t.Fatalf("shape %v: %v", s, err)
			}
		}
		for _, name := range []string{"gemm", "mvt1", "atax2"} {
			k, err := polybench.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rt.Register(k.IR); err != nil {
				t.Fatal(err)
			}
		}
		return testServer(t, Config{Runtime: rt})
	}
	jsonTS := httptest.NewServer(newServer().Handler())
	defer jsonTS.Close()
	wireTS := httptest.NewServer(newServer().Handler())
	defer wireTS.Close()

	type query struct {
		region string
		b      symbolic.Bindings
	}
	var queries []query
	for trial := 0; trial < 8; trial++ {
		for _, scale := range []int64{256, 400, 512} {
			queries = append(queries, query{fmt.Sprintf("gen-%03d", trial), regiongen.Bindings(scale)})
		}
	}
	for _, name := range []string{"gemm", "mvt1", "atax2"} {
		k, err := polybench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, query{name, k.Bindings(polybench.Test)})
	}
	// Error cases: unknown region, missing binding.
	queries = append(queries,
		query{"no-such-region", symbolic.Bindings{"n": 8}},
		query{"gemm", symbolic.Bindings{"n": 8}}, // missing ni/nj/nk params
	)

	for pass := 0; pass < 2; pass++ { // second pass exercises cache hits
		for qi, q := range queries {
			jsonBody, err := json.Marshal(DecideRequest{Region: q.region, Bindings: q.b})
			if err != nil {
				t.Fatal(err)
			}
			jr, jraw := postDecideV2(t, jsonTS.URL, string(jsonBody))
			var jresp DecideResponseV2
			var jerrCode string
			if jr.StatusCode == http.StatusOK {
				if err := json.Unmarshal(jraw, &jresp); err != nil {
					t.Fatalf("query %d: %v", qi, err)
				}
			} else {
				var env ErrorEnvelope
				if err := json.Unmarshal(jraw, &env); err != nil {
					t.Fatalf("query %d: %v", qi, err)
				}
				jerrCode = env.Error.Code
			}

			// Named form on even passes, slot form on odd: both must
			// match JSON (slot-form unbound symbols surface as the same
			// code even though the check is a length comparison).
			var wreq wire.Request
			if (pass+qi)%2 == 0 {
				wreq = namedReqFor(q.region, q.b)
			} else {
				wreq = wireReqFor(q.region, q.b)
			}
			wr, wraw := postWire(t, wireTS.URL, wire.AppendRequest(nil, &wreq))
			if wr.StatusCode != jr.StatusCode {
				t.Fatalf("query %d pass %d (%s): wire status %d, json status %d", qi, pass, q.region, wr.StatusCode, jr.StatusCode)
			}
			frames, err := wire.DecodeAll(wraw)
			if err != nil {
				t.Fatalf("query %d: decode response: %v", qi, err)
			}
			if len(frames) != 1 {
				t.Fatalf("query %d: %d response frames", qi, len(frames))
			}
			if wr.StatusCode != http.StatusOK {
				if wr.Header.Get("Content-Type") != wire.ContentType {
					t.Fatalf("query %d: error content-type %q", qi, wr.Header.Get("Content-Type"))
				}
				if frames[0].Type != wire.TypeError {
					t.Fatalf("query %d: error frame type %d", qi, frames[0].Type)
				}
				if frames[0].Err.Code != jerrCode {
					t.Fatalf("query %d: wire code %q, json code %q", qi, frames[0].Err.Code, jerrCode)
				}
				if frames[0].Err.Status != wr.StatusCode {
					t.Fatalf("query %d: frame status %d, http %d", qi, frames[0].Err.Status, wr.StatusCode)
				}
				continue
			}
			got := normalizeV2(wireToV2(t, frames[0].Resp))
			want := normalizeV2(jresp)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d pass %d (%s):\nwire %+v\njson %+v", qi, pass, q.region, got, want)
			}
			if pass == 1 && got.Error == nil && !got.CacheHit {
				t.Fatalf("query %d: second pass not a cache hit", qi)
			}
		}
	}
}

func postDecideV2(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v2/decide", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestWireBatchMatchesJSON: batch frames mirror the JSON batch contract
// — 200 with per-item errors inside, duplicates coalesced and marked
// CacheHit.
func TestWireBatchMatchesJSON(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	gemm := symbolic.Bindings{"n": 128}
	reqs := []wire.Request{
		wireReqFor("gemm", gemm),
		namedReqFor("mvt1", symbolic.Bindings{"n": 512}),
		{Region: "nope", Names: []string{"n"}, Values: []int64{4}},
		wireReqFor("gemm", gemm), // duplicate of item 0
	}
	resp, raw := postWire(t, ts.URL, wire.AppendBatchRequest(nil, reqs))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %x", resp.StatusCode, raw)
	}
	frames, err := wire.DecodeAll(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || frames[0].Type != wire.TypeBatchResponse {
		t.Fatalf("frames %+v", frames)
	}
	fr := frames[0]
	if fr.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", fr.Coalesced)
	}
	if len(fr.Resps) != 4 {
		t.Fatalf("%d results", len(fr.Resps))
	}
	if fr.Resps[0].Err != nil || fr.Resps[0].Verdict == "" {
		t.Fatalf("item 0: %+v", fr.Resps[0])
	}
	if fr.Resps[2].Err == nil || fr.Resps[2].Err.Code != ErrCodeUnknownRegion {
		t.Fatalf("item 2: %+v", fr.Resps[2])
	}
	if !fr.Resps[3].CacheHit || fr.Resps[3].Verdict != fr.Resps[0].Verdict {
		t.Fatalf("coalesced dup: %+v", fr.Resps[3])
	}
}

// TestWirePipelined: several request frames in one body come back as
// matching response frames in order — the persistent-connection framing
// the streaming client batches on.
func TestWirePipelined(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var body []byte
	req1 := wireReqFor("mvt1", symbolic.Bindings{"n": 256})
	req2 := wireReqFor("mvt1", symbolic.Bindings{"n": 300})
	req3 := wire.Request{Region: "absent"}
	body = wire.AppendRequest(body, &req1)
	body = wire.AppendRequest(body, &req2)
	body = wire.AppendRequest(body, &req3)

	resp, raw := postWire(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	frames, err := wire.DecodeAll(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("%d frames, want 3", len(frames))
	}
	for i, fr := range frames {
		if fr.Type != wire.TypeResponse {
			t.Fatalf("frame %d type %d", i, fr.Type)
		}
	}
	if frames[0].Resp.Region != "mvt1" || frames[0].Resp.Verdict == "" {
		t.Fatalf("frame 0: %+v", frames[0].Resp)
	}
	if frames[2].Resp.Err == nil || frames[2].Resp.Err.Code != ErrCodeUnknownRegion {
		t.Fatalf("frame 2: %+v", frames[2].Resp)
	}
}

// TestWireRejections: malformed bodies, foreign frame types, key-hash
// mismatches and oversized batches all answer with TypeError frames
// carrying the stable envelope codes.
func TestWireRejections(t *testing.T) {
	s := testServer(t, Config{MaxBatch: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	expectErr := func(name string, body []byte, status int, code string) {
		t.Helper()
		resp, raw := postWire(t, ts.URL, body)
		if resp.StatusCode != status {
			t.Fatalf("%s: status %d, want %d", name, resp.StatusCode, status)
		}
		frames, err := wire.DecodeAll(raw)
		if err != nil || len(frames) != 1 || frames[0].Type != wire.TypeError {
			t.Fatalf("%s: bad error frame: %v %+v", name, err, frames)
		}
		if frames[0].Err.Code != code {
			t.Fatalf("%s: code %q, want %q", name, frames[0].Err.Code, code)
		}
	}

	expectErr("garbage", []byte("this is not a frame"), http.StatusBadRequest, ErrCodeBadRequest)
	expectErr("empty", nil, http.StatusBadRequest, ErrCodeBadRequest)

	resp := wire.Response{Region: "gemm"}
	expectErr("response frame in request", wire.AppendResponse(nil, &resp),
		http.StatusBadRequest, ErrCodeBadRequest)

	big := wire.AppendBatchRequest(nil, make([]wire.Request, 3))
	expectErr("oversized batch", big, http.StatusRequestEntityTooLarge, ErrCodeBatchTooLarge)

	// Key-hash mismatch: right values, wrong layout checksum.
	mism := wireReqFor("mvt1", symbolic.Bindings{"n": 64})
	mism.KeyHash ^= 0xbad
	expectErr("hash mismatch", wire.AppendRequest(nil, &mism),
		http.StatusBadRequest, ErrCodeBadRequest)

	// Slot count mismatch maps to unbound_symbol like a missing binding.
	short := wire.Request{Region: "gemm", SlotForm: true, Values: make([]int64, 9)}
	expectErr("short slot vector", wire.AppendRequest(nil, &short),
		http.StatusUnprocessableEntity, ErrCodeUnboundSymbol)
}

// TestRetryAfterFractionalHint is the envelope/header-mismatch bugfix
// test: a fractional Retry-After hint installed upstream (fault layers,
// sidecars) must mirror into the envelope verbatim — previously integer
// parsing dropped it and envelope-driven clients backed off 0s.
func TestRetryAfterFractionalHint(t *testing.T) {
	for _, tc := range []struct {
		header string
		want   float64
	}{
		{"0.5", 0.5},
		{"1.25", 1.25},
		{"", 1}, // default installed by the server itself
		{"3", 3},
	} {
		w := httptest.NewRecorder()
		if tc.header != "" {
			w.Header().Set("Retry-After", tc.header)
		}
		httpError(w, http.StatusServiceUnavailable, ErrCodeDraining, "drain")
		var env ErrorEnvelope
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatalf("header %q: %v", tc.header, err)
		}
		if env.Error.RetryAfter != tc.want {
			t.Errorf("header %q: envelope retry_after = %v, want %v", tc.header, env.Error.RetryAfter, tc.want)
		}
	}

	// Non-transient statuses carry no hint.
	w := httptest.NewRecorder()
	httpError(w, http.StatusNotFound, ErrCodeUnknownRegion, "nope")
	if bytes.Contains(w.Body.Bytes(), []byte("retry_after")) {
		t.Errorf("404 envelope carries retry_after: %s", w.Body.String())
	}

	// The wire error frame mirrors the same hint.
	w = httptest.NewRecorder()
	w.Header().Set("Retry-After", "0.5")
	wireError(w, http.StatusTooManyRequests, ErrCodeQueueFull, "shed")
	frames, err := wire.DecodeAll(w.Body.Bytes())
	if err != nil || len(frames) != 1 || frames[0].Type != wire.TypeError {
		t.Fatalf("wire error frame: %v %+v", err, frames)
	}
	if frames[0].Err.RetryAfterSeconds != 0.5 {
		t.Errorf("wire retry hint = %v, want 0.5", frames[0].Err.RetryAfterSeconds)
	}
}

// TestEncodeFailureKeepsEnvelope is the encode-failure bugfix test:
// when response encoding fails, the reply must still be the structured
// envelope with code "internal" — not a text/plain http.Error body.
func TestEncodeFailureKeepsEnvelope(t *testing.T) {
	w := httptest.NewRecorder()
	writeJSON(w, http.StatusOK, map[string]any{"bad": make(chan int)})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("body not an envelope: %v (%s)", err, w.Body.String())
	}
	if env.Error.Code != ErrCodeInternal {
		t.Fatalf("code %q, want %q", env.Error.Code, ErrCodeInternal)
	}

	// Degenerate double failure: the envelope itself is unencodable
	// (NaN retry hint). The guard emits a constant envelope instead of
	// recursing.
	w = httptest.NewRecorder()
	writeJSON(w, http.StatusServiceUnavailable, ErrorEnvelope{Error: ErrorInfo{
		Code: ErrCodeDraining, Message: "x", RetryAfter: math.NaN(),
	}})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("double failure status %d", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("double failure body: %v (%s)", err, w.Body.String())
	}
	if env.Error.Code != ErrCodeInternal {
		t.Fatalf("double failure code %q", env.Error.Code)
	}
}

// TestV1NeverNegotiates: the frozen endpoint ignores the frame content
// type — a frame body is just an unparsable JSON body there.
func TestV1NeverNegotiates(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := wireReqFor("mvt1", symbolic.Bindings{"n": 64})
	resp, err := http.Post(ts.URL+"/v1/decide", wire.ContentType, bytes.NewReader(wire.AppendRequest(nil, &req)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("v1 reply not a JSON envelope: %v", err)
	}
	if env.Error.Code != ErrCodeBadRequest {
		t.Fatalf("code %q", env.Error.Code)
	}
}
