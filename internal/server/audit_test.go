package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/hybridsel/hybridsel/internal/audit"
)

// auditedServer wires a runtime, an inline shadow auditor with a live
// calibrator, and a server exposing both.
func auditedServer(t *testing.T, cfg Config) (*Server, *audit.Auditor) {
	t.Helper()
	rt := testRuntime(t)
	cal := audit.NewCalibrator(0)
	a := audit.New(audit.Config{Runtime: rt, Rate: 1, Calibrator: cal})
	t.Cleanup(a.Close)
	rt.SetObserver(a.Observer(nil))
	cfg.Runtime = rt
	cfg.Auditor = a
	return testServer(t, cfg), a
}

func TestAuditEndpointAndMetrics(t *testing.T) {
	s, _ := auditedServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postDecide(t, ts.URL, `{"region":"gemm","bindings":{"n":128}}`)
	postDecide(t, ts.URL, `{"region":"mvt1","bindings":{"n":300}}`)

	resp, err := http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/audit status %d", resp.StatusCode)
	}
	var rep audit.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 2 || len(rep.Regions) != 2 {
		t.Fatalf("audit report samples=%d regions=%d: %+v",
			rep.Samples, len(rep.Regions), rep)
	}
	if rep.Regions[0].CPU.Factor <= 0 {
		t.Fatalf("report missing correction factors: %+v", rep.Regions[0])
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"hybridsel_audit_samples_total 2",
		"hybridsel_mispredict_total",
		"hybridsel_audit_dropped_total 0",
		"hybridsel_audit_regret_seconds_total",
		`hybridsel_audit_region_samples_total{region="gemm"} 1`,
		`hybridsel_audit_region_mispredict_total{region="mvt1"}`,
		`hybridsel_audit_region_regret_seconds_total{region="gemm"}`,
		`hybridsel_correction_factor{region="gemm",model="cpu"}`,
		`hybridsel_correction_factor{region="mvt1",model="gpu"}`,
	} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestAuditEndpointDisabledWithoutAuditor(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/audit without auditor: status %d, want 404", resp.StatusCode)
	}
	// The audit counters are still present (zero) so dashboards do not
	// lose the series when auditing is toggled off.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	if !bytes.Contains(raw, []byte("hybridsel_audit_samples_total 0")) {
		t.Error("zero audit counters missing from /metrics")
	}
}

// TestSaturationStillShedsWithAuditor re-runs the load-shedding check
// with the audit loop wired in: sampling must never turn admission-queue
// pressure into blocking.
func TestSaturationStillShedsWithAuditor(t *testing.T) {
	s, _ := auditedServer(t, Config{Concurrency: 1, QueueDepth: -1})
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s.holdForTest = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, _ := postDecide(t, ts.URL, `{"region":"gemm","bindings":{"n":64}}`)
		done <- resp.StatusCode
	}()
	<-entered

	resp, _ := postDecide(t, ts.URL, `{"region":"gemm","bindings":{"n":64}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("held request finished %d, want 200", code)
	}
}
