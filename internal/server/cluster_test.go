package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/hybridsel/hybridsel/internal/cluster"
)

func TestClusterStatusEndpoint(t *testing.T) {
	node, err := cluster.New(cluster.Config{
		Self: cluster.Member{ID: "node-a", Addr: "127.0.0.1:8080"},
		Peers: []cluster.Member{
			{ID: "node-b", Addr: "127.0.0.1:8081", Gossip: "http://127.0.0.1:1"},
		},
		Vnodes: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, Config{Cluster: node})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster: %d", resp.StatusCode)
	}
	var st cluster.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Self != "node-a" || len(st.Members) != 2 {
		t.Fatalf("status %+v", st)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, series := range []string{
		`hybridsel_cluster_members{health="alive"}`,
		"hybridsel_cluster_gossip_ticks_total",
	} {
		if !strings.Contains(string(body), series) {
			t.Fatalf("/metrics missing %q", series)
		}
	}
}

func TestClusterEndpointAbsentWhenStandalone(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("standalone daemon served /v1/cluster with %d", resp.StatusCode)
	}
}
