package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hybridsel/hybridsel/internal/wire"
)

// startStreamServer brings up a server with a raw TCP stream listener
// and returns the listener address.
func startStreamServer(t *testing.T, s *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ServeStream(l) }()
	t.Cleanup(func() {
		l.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("ServeStream: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("ServeStream did not return after listener close")
		}
	})
	return l.Addr().String()
}

// dialStream connects to a raw stream listener and consumes the credit
// handshake.
func dialStream(t *testing.T, addr string) (net.Conn, *wire.StreamReader, int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	sr := wire.NewStreamReader(conn)
	f, err := sr.Next()
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if f.Type != wire.TypeCredit || f.Credit == 0 {
		t.Fatalf("handshake frame = %+v, want credit grant", f)
	}
	return conn, sr, int(f.Credit)
}

func streamReq(t *testing.T, conn net.Conn, id uint64, region string, n int64) {
	t.Helper()
	req := wire.Request{Region: region, Names: []string{"n"}, Values: []int64{n}}
	if _, err := conn.Write(wire.AppendStreamRequest(nil, id, &req)); err != nil {
		t.Fatalf("write stream %d: %v", id, err)
	}
}

func TestStreamServeBasic(t *testing.T) {
	s := testServer(t, Config{})
	addr := startStreamServer(t, s)
	conn, sr, credit := dialStream(t, addr)
	if credit != DefaultStreamCredit {
		t.Fatalf("credit = %d, want %d", credit, DefaultStreamCredit)
	}

	streamReq(t, conn, 1, "gemm", 1100)
	f, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TypeStreamResponse || f.StreamID != 1 {
		t.Fatalf("frame = %+v, want stream response 1", f)
	}
	if f.Resp.Err != nil {
		t.Fatalf("stream 1 errored: %+v", f.Resp.Err)
	}
	if f.Resp.Kind != "cpu" && f.Resp.Kind != "gpu" {
		t.Fatalf("kind = %q", f.Resp.Kind)
	}

	// Same bindings again: decision-cache hit, same verdict.
	streamReq(t, conn, 2, "gemm", 1100)
	f2, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f2.StreamID != 2 || !f2.Resp.CacheHit || f2.Resp.Verdict != f.Resp.Verdict {
		t.Fatalf("second decide = %+v, want cache hit matching %q", f2.Resp, f.Resp.Verdict)
	}

	// Semantic failures ride the stream as error responses.
	streamReq(t, conn, 3, "nope", 1)
	f3, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f3.Resp.Err == nil || f3.Resp.Err.Code != ErrCodeUnknownRegion {
		t.Fatalf("unknown region answered %+v, want %s", f3.Resp, ErrCodeUnknownRegion)
	}
	if got := s.met.streamRequests.Load(); got != 3 {
		t.Fatalf("streamRequests = %d, want 3", got)
	}
}

// TestStreamOutOfOrder: a slow decision must not block the fast one
// pipelined behind it — completions are matched by stream ID, not
// arrival order.
func TestStreamOutOfOrder(t *testing.T) {
	release := make(chan struct{})
	blocked := make(chan struct{}, 1)
	var once sync.Once
	s := testServer(t, Config{Concurrency: 4})
	s.holdForTest = func() {
		var wait bool
		once.Do(func() { wait = true; blocked <- struct{}{} })
		if wait {
			<-release
		}
	}
	addr := startStreamServer(t, s)
	conn, sr, _ := dialStream(t, addr)

	streamReq(t, conn, 1, "gemm", 256)
	<-blocked // stream 1 is parked inside its worker
	streamReq(t, conn, 2, "mvt1", 512)

	f, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.StreamID != 2 {
		t.Fatalf("first completion is stream %d, want the fast stream 2", f.StreamID)
	}
	close(release)
	f, err = sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.StreamID != 1 || f.Resp.Err != nil {
		t.Fatalf("slow stream answered %+v, want stream 1 ok", f)
	}
}

// TestStreamCreditExhaustion: requests beyond the granted window are
// shed with queue_full semantics on their own stream — backpressure,
// not a dropped frame or a killed connection.
func TestStreamCreditExhaustion(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	s := testServer(t, Config{Concurrency: 2, StreamCredit: 2})
	s.holdForTest = func() {
		entered <- struct{}{}
		<-release
	}
	addr := startStreamServer(t, s)
	conn, sr, credit := dialStream(t, addr)
	if credit != 2 {
		t.Fatalf("credit = %d, want 2", credit)
	}

	streamReq(t, conn, 1, "gemm", 256)
	streamReq(t, conn, 2, "gemm", 512)
	<-entered // both in flight inside workers
	<-entered

	streamReq(t, conn, 3, "gemm", 1100) // over the window
	f, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.StreamID != 3 || f.Resp.Err == nil || f.Resp.Err.Code != ErrCodeQueueFull {
		t.Fatalf("over-credit stream answered %+v, want queue_full on stream 3", f)
	}
	if f.Resp.Err.RetryAfterSeconds <= 0 {
		t.Fatalf("queue_full carries no retry hint: %+v", f.Resp.Err)
	}

	close(release)
	seen := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		f, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f.Resp.Err != nil {
			t.Fatalf("stream %d errored after release: %+v", f.StreamID, f.Resp.Err)
		}
		seen[f.StreamID] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("in-flight streams not completed: %v", seen)
	}
}

// TestStreamDrainGoaway: Shutdown sends Goaway, in-flight streams
// complete, later streams answer draining — no verdict hangs.
func TestStreamDrainGoaway(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	s := testServer(t, Config{Concurrency: 2})
	s.holdForTest = func() {
		entered <- struct{}{}
		<-release
	}
	addr := startStreamServer(t, s)
	conn, sr, _ := dialStream(t, addr)

	streamReq(t, conn, 1, "gemm", 256)
	streamReq(t, conn, 2, "mvt1", 512)
	<-entered
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Goaway arrives while streams 1 and 2 are still in flight.
	f, err := sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TypeGoaway {
		t.Fatalf("frame = %+v, want goaway", f)
	}
	if f.Away.LastStreamID != 2 {
		t.Fatalf("goaway last stream = %d, want 2", f.Away.LastStreamID)
	}

	// A stream past the goaway line is answered with draining, not
	// dropped.
	streamReq(t, conn, 3, "gemm", 1100)
	f, err = sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.StreamID != 3 || f.Resp.Err == nil || f.Resp.Err.Code != ErrCodeDraining {
		t.Fatalf("post-goaway stream answered %+v, want draining on stream 3", f)
	}

	close(release)
	for i := 0; i < 2; i++ {
		f, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != wire.TypeStreamResponse || f.Resp.Err != nil {
			t.Fatalf("in-flight stream %d not completed cleanly: %+v", f.StreamID, f)
		}
	}
	conn.Close()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestStreamPipelinedStress: several connections, each with hundreds of
// pipelined requests in flight against the credit window, all answered
// exactly once. Run under -race this doubles as the data-race gate on
// the reader/worker/combining-writer machinery.
func TestStreamPipelinedStress(t *testing.T) {
	s := testServer(t, Config{StreamCredit: 32})
	addr := startStreamServer(t, s)

	const conns = 4
	const perConn = 300
	kernels := []string{"gemm", "mvt1", "atax2"}
	var wg sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			sr := wire.NewStreamReader(conn)
			f, err := sr.Next()
			if err != nil || f.Type != wire.TypeCredit {
				t.Errorf("conn %d handshake: %v %+v", ci, err, f)
				return
			}
			credit := int(f.Credit)

			got := make(map[uint64]bool, perConn)
			inflight := 0
			next := uint64(1)
			recv := func() bool {
				f, err := sr.Next()
				if err != nil {
					t.Errorf("conn %d read: %v", ci, err)
					return false
				}
				if f.Type != wire.TypeStreamResponse || f.Resp.Err != nil {
					t.Errorf("conn %d stream %d: %+v", ci, f.StreamID, f)
					return false
				}
				if got[f.StreamID] {
					t.Errorf("conn %d stream %d answered twice", ci, f.StreamID)
					return false
				}
				got[f.StreamID] = true
				return true
			}
			for next <= perConn {
				if inflight == credit {
					if !recv() {
						return
					}
					inflight--
				}
				req := wire.Request{
					Region: kernels[int(next)%len(kernels)],
					Names:  []string{"n"},
					Values: []int64{256 + int64(next)%64},
				}
				if _, err := conn.Write(wire.AppendStreamRequest(nil, next, &req)); err != nil {
					t.Errorf("conn %d write: %v", ci, err)
					return
				}
				next++
				inflight++
			}
			for inflight > 0 {
				if !recv() {
					return
				}
				inflight--
			}
			if len(got) != perConn {
				t.Errorf("conn %d: %d of %d streams answered", ci, len(got), perConn)
			}
		}(ci)
	}
	wg.Wait()
	if got := s.met.streamConns.Load(); got != 0 {
		// Connections may still be unwinding; give the gauges a beat.
		time.Sleep(100 * time.Millisecond)
		if got := s.met.streamConns.Load(); got != 0 {
			t.Fatalf("stream connection gauge leaked: %d", got)
		}
	}
}

// TestStreamUpgrade: the HTTP Upgrade path negotiates the same stream
// protocol on the existing port.
func TestStreamUpgrade(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	addr := strings.TrimPrefix(ts.URL, "http://")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/stream HTTP/1.1\r\nHost: %s\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n",
		addr, StreamUpgradeProto)
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		t.Fatalf("upgrade status = %d, want 101", resp.StatusCode)
	}
	sr := wire.NewStreamReader(br)
	f, err := sr.Next()
	if err != nil || f.Type != wire.TypeCredit {
		t.Fatalf("handshake after upgrade: %v %+v", err, f)
	}
	streamReq(t, conn, 1, "gemm", 1100)
	f, err = sr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TypeStreamResponse || f.StreamID != 1 || f.Resp.Err != nil {
		t.Fatalf("upgraded stream answered %+v", f)
	}

	// A plain GET without the upgrade token is refused, not hijacked.
	r, err := http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusUpgradeRequired {
		t.Fatalf("bare GET /v1/stream = %d, want %d", r.StatusCode, http.StatusUpgradeRequired)
	}
}
