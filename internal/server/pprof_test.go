package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestPprofServesOnSeparateListener(t *testing.T) {
	p, err := StartPprof("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(context.Background())

	resp, err := http.Get("http://" + p.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status %d", resp.StatusCode)
	}
	if !strings.Contains(string(raw), "goroutine") {
		t.Fatalf("index does not list profiles: %.200s", raw)
	}
	// A concrete profile endpoint, not just the index.
	resp, err = http.Get("http://" + p.Addr() + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("goroutine profile status %d", resp.StatusCode)
	}
}

// TestPprofDrainSafeShutdown pins the shutdown contract: an in-flight
// profile collection (here a 1-second CPU profile) finishes its window
// and returns a complete response; Shutdown waits for it rather than
// cutting the connection, and afterwards the listener is gone.
func TestPprofDrainSafeShutdown(t *testing.T) {
	p, err := StartPprof("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := p.Addr()

	type result struct {
		status int
		n      int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/debug/pprof/profile?seconds=1")
		if err != nil {
			inflight <- result{err: err}
			return
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			inflight <- result{err: err}
			return
		}
		inflight <- result{status: resp.StatusCode, n: len(raw)}
	}()
	// Give the profile request time to start collecting before draining.
	time.Sleep(100 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if waited := time.Since(start); waited < 500*time.Millisecond {
		t.Fatalf("shutdown returned after %v: did not wait for the in-flight profile", waited)
	}
	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight profile cut off: %v", r.err)
	}
	if r.status != http.StatusOK || r.n == 0 {
		t.Fatalf("in-flight profile incomplete: status %d, %d bytes", r.status, r.n)
	}
	if _, err := http.Get("http://" + addr + "/debug/pprof/"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
