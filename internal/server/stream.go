package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"

	"github.com/hybridsel/hybridsel/internal/wire"
)

// This file is the persistent face of the decision service: long-lived
// connections carrying pipelined stream frames (internal/wire stream
// envelope), so many in-flight decisions share one connection with no
// per-request HTTP parsing. Two front doors lead here — a raw TCP
// listener (ServeStream, hybridseld -stream-addr) and an HTTP
// Upgrade/hijack on GET /v1/stream of the existing port — and both run
// the same per-connection machinery:
//
//   - one reader goroutine decoding frames incrementally,
//   - a small worker pool running decideOneWire under the shared
//     execution slots (the same workers that bound the HTTP path),
//   - a combining writer: workers append encoded response frames to a
//     shared pending buffer and whichever worker finds the writer idle
//     flushes the whole batch in one syscall, so bursts of completions
//     coalesce without a latency-adding flush timer,
//   - flow control by credit instead of 429 churn: the server grants a
//     window on connect, requests beyond it answer queue_full on their
//     own stream, and each response implicitly returns one unit,
//   - graceful drain by Goaway: in-flight streams complete, later ones
//     answer a draining error, nothing is left hanging.

// DefaultStreamCredit is the per-connection in-flight window granted
// when Config.StreamCredit is zero.
const DefaultStreamCredit = 64

// StreamUpgradeProto is the Upgrade token negotiating a stream
// connection over the HTTP port.
const StreamUpgradeProto = "hybridsel-stream"

// streamWorkersPerConn caps the per-connection worker pool; the shared
// execution slots still bound global concurrency across connections.
const streamWorkersPerConn = 8

// streamRegistry tracks live stream listeners and connections for
// drain: Shutdown closes listeners, sends Goaway everywhere, and waits
// for connections to finish their in-flight streams.
type streamRegistry struct {
	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*streamConn]struct{}
	done      chan struct{} // closed when conns empties during drain
}

// ServeStream accepts stream connections on l until Shutdown. Each
// connection speaks the wire stream envelope directly (no HTTP); the
// server opens with a TypeCredit grant.
func (s *Server) ServeStream(l net.Listener) error {
	s.streams.mu.Lock()
	if s.streams.listeners == nil {
		s.streams.listeners = map[net.Listener]struct{}{}
	}
	s.streams.listeners[l] = struct{}{}
	s.streams.mu.Unlock()
	defer func() {
		s.streams.mu.Lock()
		delete(s.streams.listeners, l)
		s.streams.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveStreamConn(conn)
	}
}

// handleStreamUpgrade negotiates a stream connection on the HTTP port:
// GET /v1/stream with Upgrade: hybridsel-stream hijacks the connection,
// answers 101, and hands the raw conn to the stream machinery.
func (s *Server) handleStreamUpgrade(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Connection", "close")
		httpError(w, http.StatusServiceUnavailable, ErrCodeDraining, "draining")
		return
	}
	if r.Header.Get("Upgrade") != StreamUpgradeProto {
		httpError(w, http.StatusUpgradeRequired, ErrCodeBadRequest,
			fmt.Sprintf("connection upgrade %q required", StreamUpgradeProto))
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		httpError(w, http.StatusInternalServerError, ErrCodeInternal, "connection not hijackable")
		return
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		httpError(w, http.StatusInternalServerError, ErrCodeInternal, "hijack: "+err.Error())
		return
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Connection: Upgrade\r\n" +
		"Upgrade: " + StreamUpgradeProto + "\r\n\r\n"
	if _, err := bufrw.WriteString(resp); err != nil || bufrw.Flush() != nil {
		conn.Close()
		return
	}
	// bufrw.Reader may hold bytes the client pipelined behind the
	// upgrade request; serve from it, not the bare conn.
	s.serveStreamConnBuffered(conn, bufrw.Reader)
}

// streamJob is one admitted stream request awaiting a worker.
type streamJob struct {
	id  uint64
	req *wire.Request
}

// streamConn is the server half of one stream connection.
type streamConn struct {
	s      *Server
	conn   net.Conn
	credit int64
	ctx    context.Context
	cancel context.CancelFunc

	jobs     chan streamJob
	inflight atomic.Int64
	wg       sync.WaitGroup // in-flight jobs

	lastAccepted atomic.Uint64 // highest stream ID dispatched or answered
	away         atomic.Bool   // Goaway sent
	awayLast     atomic.Uint64 // LastStreamID carried in our Goaway

	// Combining writer state: workers append frames to pending under
	// wmu; the appender that finds the writer idle becomes the flusher
	// and writes batches until pending drains.
	wmu      sync.Mutex
	pending  []byte
	pendingN int
	spare    []byte
	flushing bool
	werr     error
}

func (s *Server) serveStreamConn(conn net.Conn) {
	s.serveStreamConnBuffered(conn, nil)
}

func (s *Server) serveStreamConnBuffered(conn net.Conn, pre io.Reader) {
	credit := int64(s.cfg.StreamCredit)
	if credit <= 0 {
		credit = DefaultStreamCredit
	}
	ctx, cancel := context.WithCancel(context.Background())
	sc := &streamConn{
		s:      s,
		conn:   conn,
		credit: credit,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(chan streamJob, credit),
		spare:  make([]byte, 0, 4096),
	}
	if !s.registerStream(sc) {
		conn.Close()
		cancel()
		return
	}
	s.met.streamConns.Add(1)
	defer func() {
		sc.wg.Wait() // let in-flight responses flush
		close(sc.jobs)
		conn.Close()
		cancel()
		s.met.streamConns.Add(-1)
		s.unregisterStream(sc)
	}()

	// The server speaks first: grant the flow-control window.
	var hello []byte
	hello = wire.AppendCredit(hello, uint64(credit))
	if s.draining.Load() {
		// Raced with drain: still a valid stream conn, but nothing
		// will be accepted. Say so immediately.
		sc.away.Store(true)
		hello = wire.AppendGoaway(hello, &wire.Goaway{Reason: "draining"})
	}
	sc.send(hello)

	workers := int(min(int64(streamWorkersPerConn), credit))
	for i := 0; i < workers; i++ {
		go sc.worker()
	}

	var src io.Reader = conn
	if pre != nil {
		src = pre
	}
	sr := wire.NewStreamReader(src)
	var scratch []byte
	for {
		f, err := sr.Next()
		if err != nil {
			// EOF (clean or mid-frame) and decode failures all end the
			// connection; in-flight work still completes via the
			// deferred wg.Wait.
			return
		}
		switch f.Type {
		case wire.TypeStreamRequest:
			s.met.streamRequests.Add(1)
			if f.StreamID > sc.lastAccepted.Load() {
				sc.lastAccepted.Store(f.StreamID)
			}
			if sc.away.Load() && f.StreamID > sc.awayLast.Load() {
				scratch = sc.rejectStream(scratch, f.StreamID, ErrCodeDraining, "draining")
				continue
			}
			if sc.inflight.Load() >= sc.credit {
				// Client overran its credit window: shed on this
				// stream only, the stream analogue of a 429.
				scratch = sc.rejectStream(scratch, f.StreamID, ErrCodeQueueFull, "stream credit exhausted")
				continue
			}
			sc.inflight.Add(1)
			s.met.streamInflight.Add(1)
			sc.wg.Add(1)
			sc.jobs <- streamJob{id: f.StreamID, req: f.Req}
		case wire.TypeGoaway:
			// Client is leaving; keep answering what's in flight and
			// let its close of the write side end the loop.
		case wire.TypeCredit:
			// Credit flows server→client only; ignore.
		default:
			// Protocol error: answer with a connection-level error
			// frame and drop the connection.
			e := &wire.Error{Code: ErrCodeBadRequest,
				Message: fmt.Sprintf("unexpected frame type %d on stream connection", f.Type)}
			sc.send(wire.AppendError(scratch[:0], e))
			return
		}
	}
}

// rejectStream answers one stream with an error response without
// dispatching a worker. Returns the reusable scratch buffer.
func (sc *streamConn) rejectStream(scratch []byte, id uint64, code, msg string) []byte {
	resp := wire.Response{Err: &wire.Error{Code: code, Message: msg, RetryAfterSeconds: 0.05}}
	scratch = wire.AppendStreamResponse(scratch[:0], id, &resp)
	sc.send(scratch)
	return scratch
}

// worker runs admitted stream jobs under the shared execution slots.
func (sc *streamConn) worker() {
	s := sc.s
	scratch := make([]byte, 0, 2048)
	var cands []wire.Candidate
	for job := range sc.jobs {
		s.slots <- struct{}{}
		if s.holdForTest != nil {
			s.holdForTest()
		}
		out, ei := s.decideOneWire(sc.ctx, job.req)
		<-s.slots
		resp := projectWireInto(job.req.Region, out, ei, cands[:0])
		if resp.Candidates != nil {
			cands = resp.Candidates
		}
		scratch = wire.AppendStreamResponse(scratch[:0], job.id, &resp)
		sc.send(scratch)
		sc.inflight.Add(-1)
		s.met.streamInflight.Add(-1)
		sc.wg.Done()
	}
}

// send appends one encoded frame to the connection's pending buffer and
// flushes if no other goroutine is already writing. The caller's buffer
// is copied, so callers reuse their scratch immediately. Batches that
// pile up while a write syscall is in progress go out together on the
// next write — write coalescing without a flush timer, so a lone
// request never waits.
func (sc *streamConn) send(frame []byte) {
	sc.wmu.Lock()
	if sc.werr != nil {
		sc.wmu.Unlock()
		return
	}
	sc.pending = append(sc.pending, frame...)
	sc.pendingN++
	if sc.flushing {
		sc.wmu.Unlock()
		return
	}
	sc.flushing = true
	for sc.werr == nil && len(sc.pending) > 0 {
		buf, n := sc.pending, sc.pendingN
		sc.pending, sc.pendingN = sc.spare[:0], 0
		sc.wmu.Unlock()

		_, err := sc.conn.Write(buf)
		sc.s.met.streamWrites.Add(1)
		if n > 1 {
			sc.s.met.streamCoalesced.Add(uint64(n - 1))
		}

		sc.wmu.Lock()
		if cap(buf) <= maxPooledEncodeBuf {
			sc.spare = buf[:0]
		} else {
			sc.spare = make([]byte, 0, 4096)
		}
		if err != nil {
			sc.werr = err
		}
	}
	sc.flushing = false
	sc.wmu.Unlock()
}

// goaway announces drain on this connection: streams accepted so far
// will be answered, later ones get a draining error response.
func (sc *streamConn) goaway(reason string) {
	if sc.away.Swap(true) {
		return
	}
	sc.awayLast.Store(sc.lastAccepted.Load())
	sc.send(wire.AppendGoaway(nil, &wire.Goaway{LastStreamID: sc.awayLast.Load(), Reason: reason}))
}

func (s *Server) registerStream(sc *streamConn) bool {
	s.streams.mu.Lock()
	defer s.streams.mu.Unlock()
	if s.streams.done != nil {
		// Drain already started waiting; refuse new connections.
		return false
	}
	if s.streams.conns == nil {
		s.streams.conns = map[*streamConn]struct{}{}
	}
	s.streams.conns[sc] = struct{}{}
	return true
}

func (s *Server) unregisterStream(sc *streamConn) {
	s.streams.mu.Lock()
	delete(s.streams.conns, sc)
	if s.streams.done != nil && len(s.streams.conns) == 0 {
		close(s.streams.done)
		s.streams.done = nil
	}
	s.streams.mu.Unlock()
}

// shutdownStreams drains the stream plane: close listeners, Goaway
// every connection, wait (bounded by ctx) for in-flight streams to
// finish and clients to hang up, then force-close stragglers.
func (s *Server) shutdownStreams(ctx context.Context) error {
	s.streams.mu.Lock()
	for l := range s.streams.listeners {
		l.Close()
	}
	conns := make([]*streamConn, 0, len(s.streams.conns))
	for sc := range s.streams.conns {
		conns = append(conns, sc)
	}
	var done chan struct{}
	if len(conns) > 0 {
		done = make(chan struct{})
		s.streams.done = done
	}
	s.streams.mu.Unlock()

	for _, sc := range conns {
		sc.goaway("draining")
	}
	if done == nil {
		return nil
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.streams.mu.Lock()
		for sc := range s.streams.conns {
			sc.cancel()
			sc.conn.Close()
		}
		s.streams.done = nil
		s.streams.mu.Unlock()
		return ctx.Err()
	}
}
