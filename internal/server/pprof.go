package server

import (
	"context"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// PprofServer serves the net/http/pprof handlers on a listener of their
// own, so profiling traffic never competes with (or is exposed on) the
// decision service's address. It is off unless explicitly started; the
// address should stay loopback in production — the pprof endpoints are
// unauthenticated by design.
type PprofServer struct {
	srv *http.Server
	ln  net.Listener
	err chan error
}

// StartPprof begins serving the pprof endpoints on addr (which may use
// port 0 to pick a free port — see Addr). The handlers are mounted on a
// private mux, not http.DefaultServeMux, so importing this package never
// leaks debug handlers into anyone else's server.
func StartPprof(addr string, logger *slog.Logger) (*PprofServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &PprofServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
		err: make(chan error, 1),
	}
	go func() {
		err := p.srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		p.err <- err
	}()
	if logger != nil {
		logger.Info("pprof listening", "addr", ln.Addr().String())
	}
	return p, nil
}

// Addr reports the bound listen address (useful with ":0").
func (p *PprofServer) Addr() string { return p.ln.Addr().String() }

// Shutdown stops accepting new profiling requests and waits for in-flight
// ones — a running CPU profile or execution trace finishes its window
// rather than being cut off mid-collection — until ctx expires, at which
// point remaining connections are closed forcibly.
func (p *PprofServer) Shutdown(ctx context.Context) error {
	err := p.srv.Shutdown(ctx)
	if serveErr := <-p.err; err == nil {
		err = serveErr
	}
	return err
}
