package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"

	"github.com/hybridsel/hybridsel/internal/learn"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/sim"
)

// FuzzDecideBody throws arbitrary bytes at the /v1/decide decoder and the
// decision path behind it. The handler runs without net/http's panic
// recovery (ServeHTTP on a recorder), so any panic in JSON decoding,
// binding evaluation, or the models surfaces as a crasher. Invariants:
// never panic, always answer, and 200 responses must parse back as the
// documented response shapes.
func FuzzDecideBody(f *testing.F) {
	rt := offload.NewRuntime(offload.Config{
		Platform: machine.PlatformP9V100(),
		CPUSim:   sim.CPUConfig{SampleItems: 8, MaxLoopSample: 32},
		GPUSim:   sim.GPUConfig{SampleWarps: 2, MaxLoopSample: 32, MaxRepSample: 1},
	})
	k, err := polybench.Get("mvt1")
	if err != nil {
		f.Fatal(err)
	}
	if _, err := rt.Register(k.IR); err != nil {
		f.Fatal(err)
	}
	s, err := New(Config{
		Runtime:  rt,
		MaxBatch: 8,
		Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		f.Fatal(err)
	}
	h := s.Handler()

	f.Add([]byte(`{"region":"mvt1","bindings":{"n":64}}`))
	f.Add([]byte(`{"region":"mvt1","bindings":{"n":64},"execute":true}`))
	f.Add([]byte(`{"requests":[{"region":"mvt1","bindings":{"n":8}},{"region":"nope"}]}`))
	f.Add([]byte(`{"requests":[]}`))
	f.Add([]byte(`{"region":"mvt1","bindings":{"n":-1}}`))
	f.Add([]byte(`{"region":"mvt1","bindings":{"n":9223372036854775807}}`))
	f.Add([]byte(`{"requests":[{},{},{},{},{},{},{},{},{}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"region":1}`))
	f.Add([]byte(`{"bindings":{"n":1.5}}`))

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v1/decide", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		res := rec.Result()
		if res.StatusCode < 200 || res.StatusCode > 599 {
			t.Fatalf("implausible status %d for body %q", res.StatusCode, body)
		}
		if res.StatusCode != 200 {
			return
		}
		// Decode with the shape the request selected: batch bodies answer
		// with BatchResponse, everything else with a single response.
		var probe decideBody
		isBatch := json.Unmarshal(body, &probe) == nil && probe.Requests != nil
		if isBatch {
			var br BatchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
				t.Fatalf("200 batch response is not a BatchResponse: %v (body %q)", err, body)
			}
			if len(br.Results) != len(probe.Requests) {
				t.Fatalf("batch of %d answered with %d results (body %q)",
					len(probe.Requests), len(br.Results), body)
			}
			return
		}
		var dr DecideResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &dr); err != nil {
			t.Fatalf("200 response is not a DecideResponse: %v (body %q)", err, body)
		}
	})
}

// FuzzDecideBodyV2 is FuzzDecideBody pointed at the ranked /v2/decide
// decoder: the server here runs with a residual learner wired in (as a
// zero-state corrector over no fallback), so the fuzz also crosses the
// provenance-recording decision path. Invariants: never panic, always
// answer, 200 responses parse as the v2 shapes, and every successful
// verdict carries a provenance.
func FuzzDecideBodyV2(f *testing.F) {
	lrn := learn.New(learn.Config{})
	rt := offload.NewRuntime(offload.Config{
		Platform:   machine.PlatformP9V100(),
		CPUSim:     sim.CPUConfig{SampleItems: 8, MaxLoopSample: 32},
		GPUSim:     sim.GPUConfig{SampleWarps: 2, MaxLoopSample: 32, MaxRepSample: 1},
		Calibrator: lrn,
	})
	k, err := polybench.Get("mvt1")
	if err != nil {
		f.Fatal(err)
	}
	if _, err := rt.Register(k.IR); err != nil {
		f.Fatal(err)
	}
	s, err := New(Config{
		Runtime:  rt,
		MaxBatch: 8,
		Learner:  lrn,
		Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		f.Fatal(err)
	}
	h := s.Handler()

	f.Add([]byte(`{"region":"mvt1","bindings":{"n":64}}`))
	f.Add([]byte(`{"region":"mvt1","bindings":{"n":64},"execute":true}`))
	f.Add([]byte(`{"requests":[{"region":"mvt1","bindings":{"n":8}},{"region":"nope"}]}`))
	f.Add([]byte(`{"requests":[]}`))
	f.Add([]byte(`{"region":"mvt1","bindings":{"n":-1}}`))
	f.Add([]byte(`{"region":"mvt1","bindings":{"n":9223372036854775807}}`))
	f.Add([]byte(`{"requests":[{},{},{},{},{},{},{},{},{}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"region":1}`))
	f.Add([]byte(`{"bindings":{"n":1.5}}`))

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/v2/decide", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		res := rec.Result()
		if res.StatusCode < 200 || res.StatusCode > 599 {
			t.Fatalf("implausible status %d for body %q", res.StatusCode, body)
		}
		if res.StatusCode != 200 {
			return
		}
		checkV2 := func(r DecideResponseV2) {
			if r.Error == nil && r.Verdict != "" && r.Provenance == "" {
				t.Fatalf("verdict without provenance: %+v (body %q)", r, body)
			}
		}
		var probe decideBody
		isBatch := json.Unmarshal(body, &probe) == nil && probe.Requests != nil
		if isBatch {
			var br BatchResponseV2
			if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
				t.Fatalf("200 batch response is not a BatchResponseV2: %v (body %q)", err, body)
			}
			if len(br.Results) != len(probe.Requests) {
				t.Fatalf("batch of %d answered with %d results (body %q)",
					len(probe.Requests), len(br.Results), body)
			}
			for _, r := range br.Results {
				checkV2(r)
			}
			return
		}
		var dr DecideResponseV2
		if err := json.Unmarshal(rec.Body.Bytes(), &dr); err != nil {
			t.Fatalf("200 response is not a DecideResponseV2: %v (body %q)", err, body)
		}
		checkV2(dr)
	})
}
