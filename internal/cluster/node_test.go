package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	"github.com/hybridsel/hybridsel/internal/wire"
)

// memTransport routes gossip exchanges between in-process nodes, with a
// link-level block list so tests can partition the mesh
// deterministically. A blocked or down link fails like a dead TCP dial.
type memTransport struct {
	mu      sync.Mutex
	nodes   map[string]*Node // by gossip addr
	blocked map[string]bool  // "fromAddr>toAddr"
	down    map[string]bool  // by gossip addr
}

func newMemTransport() *memTransport {
	return &memTransport{
		nodes:   map[string]*Node{},
		blocked: map[string]bool{},
		down:    map[string]bool{},
	}
}

func (m *memTransport) add(addr string, n *Node) {
	m.mu.Lock()
	m.nodes[addr] = n
	m.mu.Unlock()
}

// forTransport returns a Transport view bound to one sender address, so
// partitions can be directional pairs.
func (m *memTransport) from(addr string) Transport {
	return transportFunc(func(ctx context.Context, to string, view *wire.GossipMsg) (*wire.GossipMsg, error) {
		m.mu.Lock()
		target := m.nodes[to]
		cut := m.down[to] || m.blocked[addr+">"+to]
		m.mu.Unlock()
		if target == nil || cut {
			return nil, fmt.Errorf("memtransport: %s unreachable from %s", to, addr)
		}
		// Round-trip through the wire encoding so the test exercises the
		// same frames the HTTP transport ships.
		enc := wire.AppendGossip(nil, view)
		f, _, err := wire.DecodeFrame(enc)
		if err != nil {
			return nil, err
		}
		target.Merge(f.Gossip)
		target.noteExchangeSuccess(view.From)
		reply := wire.AppendGossip(nil, target.snapshotView())
		rf, _, err := wire.DecodeFrame(reply)
		if err != nil {
			return nil, err
		}
		return rf.Gossip, nil
	})
}

type transportFunc func(ctx context.Context, addr string, view *wire.GossipMsg) (*wire.GossipMsg, error)

func (f transportFunc) Exchange(ctx context.Context, addr string, view *wire.GossipMsg) (*wire.GossipMsg, error) {
	return f(ctx, addr, view)
}

func (m *memTransport) partition(groups ...[]string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blocked = map[string]bool{}
	side := map[string]int{}
	for gi, g := range groups {
		for _, addr := range g {
			side[addr] = gi
		}
	}
	for a, ga := range side {
		for b, gb := range side {
			if ga != gb {
				m.blocked[a+">"+b] = true
			}
		}
	}
}

func (m *memTransport) heal() {
	m.mu.Lock()
	m.blocked = map[string]bool{}
	m.mu.Unlock()
}

// setSource is a tiny CRDT state source for tests: a grow-only string
// set whose snapshot version counts changes.
type setSource struct {
	name string
	mu   sync.Mutex
	set  map[string]bool
	ver  uint64
}

func newSetSource(name string, initial ...string) *setSource {
	s := &setSource{name: name, set: map[string]bool{}}
	for _, v := range initial {
		s.set[v] = true
	}
	s.ver = 1
	return s
}

func (s *setSource) source() Source {
	return Source{
		Name: s.name,
		Snapshot: func() (uint64, []byte) {
			s.mu.Lock()
			defer s.mu.Unlock()
			vals := make([]string, 0, len(s.set))
			for v := range s.set {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			return s.ver, []byte(fmt.Sprint(vals))
		},
		Apply: func(origin string, version uint64, data []byte) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			var vals []string
			trimmed := bytes.Trim(data, "[]")
			if len(trimmed) > 0 {
				vals = append(vals, string(trimmed))
			}
			changed := false
			for _, v := range vals {
				for _, part := range bytes.Fields([]byte(v)) {
					if !s.set[string(part)] {
						s.set[string(part)] = true
						changed = true
					}
				}
			}
			if changed {
				s.ver++
			}
			return nil
		},
	}
}

func (s *setSource) values() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	vals := make([]string, 0, len(s.set))
	for v := range s.set {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// testCluster builds n nodes wired through one memTransport.
func testCluster(t *testing.T, n int) ([]*Node, []*setSource, *memTransport) {
	t.Helper()
	mesh := newMemTransport()
	members := make([]Member, n)
	for i := range members {
		id := fmt.Sprintf("node-%c", 'a'+i)
		members[i] = Member{ID: id, Addr: "http://" + id, Gossip: "mem://" + id}
	}
	nodes := make([]*Node, n)
	srcs := make([]*setSource, n)
	for i := range nodes {
		var peers []Member
		for j, m := range members {
			if j != i {
				peers = append(peers, m)
			}
		}
		node, err := New(Config{
			Self:      members[i],
			Peers:     peers,
			Vnodes:    64,
			Transport: mesh.from(members[i].Gossip),
		})
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = newSetSource("facts", members[i].ID)
		node.Register(srcs[i].source())
		nodes[i] = node
		mesh.add(members[i].Gossip, node)
	}
	return nodes, srcs, mesh
}

func tickAll(nodes []*Node, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, n := range nodes {
			n.Tick(context.Background())
		}
	}
}

// TestGossipSpreadsState: every node's source state reaches every other
// node within a few deterministic rounds.
func TestGossipSpreadsState(t *testing.T) {
	nodes, srcs, _ := testCluster(t, 3)
	tickAll(nodes, 3)
	want := fmt.Sprint([]string{"node-a", "node-b", "node-c"})
	for i, s := range srcs {
		if got := fmt.Sprint(s.values()); got != want {
			t.Fatalf("node %d state = %s, want %s", i, got, want)
		}
	}
	st := nodes[0].Status()
	if st.StatesApplied == 0 {
		t.Fatal("no states applied through gossip")
	}
	for _, m := range st.Members {
		if m.Health != "alive" {
			t.Fatalf("member %s health %s, want alive", m.ID, m.Health)
		}
	}
}

// TestGossipHealthLadder: consecutive exchange failures walk a peer
// from alive to suspect to dead; direct contact resurrects it.
func TestGossipHealthLadder(t *testing.T) {
	nodes, _, mesh := testCluster(t, 2)
	a, b := nodes[0], nodes[1]
	mesh.mu.Lock()
	mesh.down["mem://node-b"] = true
	mesh.mu.Unlock()
	a.Tick(context.Background())
	if got := a.HealthOf("node-b"); got != Suspect {
		t.Fatalf("after 1 failure: %s, want suspect", got)
	}
	a.Tick(context.Background())
	a.Tick(context.Background())
	if got := a.HealthOf("node-b"); got != Dead {
		t.Fatalf("after 3 failures: %s, want dead", got)
	}
	mesh.mu.Lock()
	mesh.down["mem://node-b"] = false
	mesh.mu.Unlock()
	a.Tick(context.Background())
	if got := a.HealthOf("node-b"); got != Alive {
		t.Fatalf("after recovery: %s, want alive", got)
	}
	_ = b
}

// TestGossipRefutesDeathRumor: a node that hears it has been declared
// dead bumps its incarnation and re-asserts itself; the refutation
// outranks the rumor on every other node.
func TestGossipRefutesDeathRumor(t *testing.T) {
	nodes, _, _ := testCluster(t, 3)
	a, b, c := nodes[0], nodes[1], nodes[2]
	// Plant the rumor: a believes b is dead at incarnation 0.
	a.Merge(&wire.GossipMsg{From: "node-c", Entries: []wire.GossipEntry{
		{ID: "node-b", Incarnation: 0, Health: wire.GossipDead},
	}})
	if got := a.HealthOf("node-b"); got != Dead {
		t.Fatalf("rumor not planted: %s", got)
	}
	// One full round: a tells b, b refutes at incarnation 1, everyone
	// converges back to alive.
	tickAll(nodes, 2)
	for i, n := range []*Node{a, b, c} {
		if got := n.HealthOf("node-b"); got != Alive {
			t.Fatalf("node %d still believes node-b is %s", i, got)
		}
	}
	if st := b.Status(); st.Refutes == 0 {
		t.Fatal("node-b never refuted the rumor")
	}
}

// TestGossipPartitionConvergesAfterHeal: during a split the sides
// diverge; after heal a few rounds make every node's view and source
// state identical again.
func TestGossipPartitionConvergesAfterHeal(t *testing.T) {
	nodes, srcs, mesh := testCluster(t, 3)
	tickAll(nodes, 2)
	mesh.partition([]string{"mem://node-a"}, []string{"mem://node-b", "mem://node-c"})
	// Unique facts learned on each side of the split.
	srcs[0].source().Apply("test", 1, []byte("[left-only]"))
	srcs[1].source().Apply("test", 1, []byte("[right-only]"))
	tickAll(nodes, 4)
	// The minority side sees the majority as unreachable.
	if got := nodes[0].HealthOf("node-b"); got == Alive {
		t.Fatalf("node-a still sees node-b as %s during partition", got)
	}
	mesh.heal()
	tickAll(nodes, 4)
	want := fmt.Sprint([]string{"left-only", "node-a", "node-b", "node-c", "right-only"})
	for i, s := range srcs {
		if got := fmt.Sprint(s.values()); got != want {
			t.Fatalf("node %d post-heal state = %s, want %s", i, got, want)
		}
	}
	for i, n := range nodes {
		for _, id := range []string{"node-a", "node-b", "node-c"} {
			if got := n.HealthOf(id); got != Alive {
				t.Fatalf("node %d post-heal sees %s as %s", i, id, got)
			}
		}
	}
}

// TestGossipHTTPTransport: two nodes gossiping over real HTTP via
// Handler converge exactly like the in-memory mesh.
func TestGossipHTTPTransport(t *testing.T) {
	srcA := newSetSource("facts", "alpha")
	srcB := newSetSource("facts", "beta")

	build := func(self Member, peers []Member, src *setSource) *Node {
		n, err := New(Config{Self: self, Peers: peers, Vnodes: 64, Transport: &HTTPTransport{}})
		if err != nil {
			t.Fatal(err)
		}
		n.Register(src.source())
		return n
	}
	a := build(Member{ID: "a", Addr: "http://a"}, nil, srcA)
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	b := build(Member{ID: "b", Addr: "http://b"}, []Member{{ID: "a", Addr: "http://a", Gossip: tsA.URL}}, srcB)
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	// a has no gossip URL for b; b drives, a learns via handler merges.
	b.Tick(context.Background())
	b.Tick(context.Background())
	want := fmt.Sprint([]string{"alpha", "beta"})
	if got := fmt.Sprint(srcA.values()); got != want {
		t.Fatalf("a state = %s, want %s", got, want)
	}
	if got := fmt.Sprint(srcB.values()); got != want {
		t.Fatalf("b state = %s, want %s", got, want)
	}
	if a.HealthOf("b") != Alive || b.HealthOf("a") != Alive {
		t.Fatal("members not mutually alive after HTTP exchange")
	}
}

// TestStatusPrometheus: the exposition renders the cluster gauges.
func TestStatusPrometheus(t *testing.T) {
	nodes, _, mesh := testCluster(t, 3)
	mesh.mu.Lock()
	mesh.down["mem://node-c"] = true
	mesh.mu.Unlock()
	tickAll(nodes[:1], 6) // node-a alone: node-b reachable, node-c down
	var buf bytes.Buffer
	if err := nodes[0].Status().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`hybridsel_cluster_members{health="alive"} 2`,
		`hybridsel_cluster_members{health="dead"} 1`,
		"hybridsel_cluster_gossip_ticks_total 6",
		"hybridsel_cluster_gossip_exchange_fails_total 3",
		"hybridsel_cluster_incarnation 0",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
