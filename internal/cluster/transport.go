package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/hybridsel/hybridsel/internal/wire"
)

// Transport performs one gossip exchange: deliver the local view to a
// peer's gossip address and return the peer's view. Implementations
// must be safe for concurrent use.
type Transport interface {
	Exchange(ctx context.Context, addr string, view *wire.GossipMsg) (*wire.GossipMsg, error)
}

// maxGossipBody bounds an exchange body. Gossip carries EWMA tables and
// learner sufficient statistics, not bulk data; anything bigger is a
// protocol error, not a bigger buffer.
const maxGossipBody = 8 << 20

// HTTPTransport gossips over HTTP POST: the request and response bodies
// are single TypeGossip frames, Content-Type wire.ContentType.
type HTTPTransport struct {
	// Client is the HTTP client to use; nil uses a private client with a
	// 2-second timeout (gossip is latency-tolerant but must not wedge
	// the loop behind a black-holed peer).
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return &http.Client{Timeout: 2 * time.Second}
}

// Exchange implements Transport.
func (t *HTTPTransport) Exchange(ctx context.Context, addr string, view *wire.GossipMsg) (*wire.GossipMsg, error) {
	body := wire.AppendGossip(nil, view)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: gossip exchange: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxGossipBody+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxGossipBody {
		return nil, fmt.Errorf("cluster: gossip response exceeds %d bytes", maxGossipBody)
	}
	return decodeGossipBody(data)
}

func decodeGossipBody(data []byte) (*wire.GossipMsg, error) {
	f, consumed, err := wire.DecodeFrame(data)
	if err != nil {
		return nil, err
	}
	if f.Type != wire.TypeGossip || consumed != len(data) {
		return nil, fmt.Errorf("%w: gossip body is not a single gossip frame", wire.ErrMalformed)
	}
	return f.Gossip, nil
}

// Handler returns the HTTP handler for the node's gossip surface:
// POST / accepts a peer's view, merges it, and answers with the local
// view (post-merge, so a refutation is visible in the same round trip).
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /{$}", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(io.LimitReader(r.Body, maxGossipBody+1))
		if err != nil || len(data) > maxGossipBody {
			http.Error(w, "gossip body unreadable or too large", http.StatusBadRequest)
			return
		}
		msg, err := decodeGossipBody(data)
		if err != nil {
			http.Error(w, "malformed gossip frame", http.StatusBadRequest)
			return
		}
		n.Merge(msg)
		// The peer reached us, so it is alive by direct evidence,
		// exactly as if our own probe had succeeded.
		n.noteExchangeSuccess(msg.From)
		body := wire.AppendGossip(nil, n.snapshotView())
		w.Header().Set("Content-Type", wire.ContentType)
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	})
	return mux
}
