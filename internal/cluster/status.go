package cluster

import (
	"fmt"
	"io"
	"sort"
)

// MemberStatus is one member's row in a Status snapshot.
type MemberStatus struct {
	ID          string            `json:"id"`
	Addr        string            `json:"addr,omitempty"`
	Gossip      string            `json:"gossip,omitempty"`
	Self        bool              `json:"self,omitempty"`
	Health      string            `json:"health"`
	Incarnation uint64            `json:"incarnation"`
	Fails       int               `json:"fails,omitempty"`
	States      map[string]uint64 `json:"states,omitempty"`
}

// Status is a point-in-time snapshot of the node's cluster view, the
// payload of the daemon's /v1/cluster endpoint.
type Status struct {
	Self    string         `json:"self"`
	Vnodes  int            `json:"vnodes"`
	Members []MemberStatus `json:"members"`

	Ticks         uint64 `json:"gossipTicks"`
	Exchanges     uint64 `json:"gossipExchanges"`
	ExchangeFails uint64 `json:"gossipExchangeFails"`
	StatesApplied uint64 `json:"gossipStatesApplied"`
	StateErrors   uint64 `json:"gossipStateErrors"`
	Refutes       uint64 `json:"gossipRefutes"`
}

// Status returns the node's current cluster view, members sorted by ID.
func (n *Node) Status() Status {
	st := Status{
		Self:          n.cfg.Self.ID,
		Vnodes:        n.ring.Vnodes(),
		Ticks:         n.ticks.Load(),
		Exchanges:     n.exchanges.Load(),
		ExchangeFails: n.exchangeFails.Load(),
		StatesApplied: n.statesApplied.Load(),
		StateErrors:   n.stateErrors.Load(),
		Refutes:       n.refutes.Load(),
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]string, 0, len(n.members))
	for id := range n.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m := n.members[id]
		ms := MemberStatus{
			ID:          m.ID,
			Addr:        m.Addr,
			Gossip:      m.Gossip,
			Self:        id == n.cfg.Self.ID,
			Health:      m.health.String(),
			Incarnation: m.incarnation,
			Fails:       m.fails,
		}
		if len(m.states) > 0 {
			ms.States = make(map[string]uint64, len(m.states))
			for name, blob := range m.states {
				ms.States[name] = blob.version
			}
		}
		st.Members = append(st.Members, ms)
	}
	return st
}

// WritePrometheus renders the node's cluster metrics in the Prometheus
// text exposition format under the hybridsel_cluster_ namespace.
func (s Status) WritePrometheus(w io.Writer) error {
	var err error
	emit := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	alive, suspect, dead := 0, 0, 0
	for _, m := range s.Members {
		switch m.Health {
		case "alive":
			alive++
		case "suspect":
			suspect++
		default:
			dead++
		}
	}
	emit("# HELP hybridsel_cluster_members Cluster members by current health verdict.\n# TYPE hybridsel_cluster_members gauge\n")
	emit("hybridsel_cluster_members{health=\"alive\"} %d\n", alive)
	emit("hybridsel_cluster_members{health=\"suspect\"} %d\n", suspect)
	emit("hybridsel_cluster_members{health=\"dead\"} %d\n", dead)
	counter := func(name, help string, v uint64) {
		emit("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("hybridsel_cluster_gossip_ticks_total", "Gossip rounds started.", s.Ticks)
	counter("hybridsel_cluster_gossip_exchanges_total", "Gossip exchanges attempted.", s.Exchanges)
	counter("hybridsel_cluster_gossip_exchange_fails_total", "Gossip exchanges that failed.", s.ExchangeFails)
	counter("hybridsel_cluster_gossip_states_applied_total", "Peer state blobs folded into local replicas.", s.StatesApplied)
	counter("hybridsel_cluster_gossip_state_errors_total", "Peer state blobs rejected by a source.", s.StateErrors)
	counter("hybridsel_cluster_gossip_refutes_total", "Rumors about the local member refuted.", s.Refutes)
	for _, m := range s.Members {
		if m.Self {
			emit("# HELP hybridsel_cluster_incarnation The local member's incarnation number.\n# TYPE hybridsel_cluster_incarnation gauge\nhybridsel_cluster_incarnation %d\n", m.Incarnation)
		}
	}
	return err
}
