package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// ringSeed keeps the property tests deterministic: same keys, same
// verdicts, every run.
const ringSeed = 0x5eed10

func sampleKeys(n int) []uint64 {
	rng := rand.New(rand.NewSource(ringSeed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	return keys
}

func memberIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%c", 'a'+i)
	}
	return ids
}

// TestRingOwnershipDeterministic: two replicas building the ring from
// the same membership — in any order — must agree on every key's owner
// and successor list. This is the property that lets routing run with
// no coordination at all.
func TestRingOwnershipDeterministic(t *testing.T) {
	ids := memberIDs(5)
	shuffled := []string{ids[3], ids[0], ids[4], ids[4], ids[1], ids[2]} // reordered + dup
	a, err := NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("member sets differ: %v vs %v", a.Members(), b.Members())
	}
	for _, key := range sampleKeys(2000) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner disagreement for %#x: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
		sa, sb := a.Successors(key, 3), b.Successors(key, 3)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("successor disagreement for %#x: %v vs %v", key, sa, sb)
		}
		if sa[0] != a.Owner(key) {
			t.Fatalf("successors[0] = %s, want owner %s", sa[0], a.Owner(key))
		}
		seen := map[string]bool{}
		for _, id := range sa {
			if seen[id] {
				t.Fatalf("duplicate member %s in successors %v", id, sa)
			}
			seen[id] = true
		}
	}
}

// TestRingRebalanceBound: removing one member must move exactly that
// member's keys (everyone else's stay put), and adding one must move at
// most K/N plus slack — the consistent-hashing contract that a
// membership change does not reshuffle the world.
func TestRingRebalanceBound(t *testing.T) {
	ids := memberIDs(5)
	keys := sampleKeys(20000)
	full, err := NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Leave: drop node-c.
	without, err := NewRing(append(append([]string{}, ids[:2]...), ids[3:]...), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, key := range keys {
		was, now := full.Owner(key), without.Owner(key)
		if was != now {
			moved++
			if was != "node-c" {
				t.Fatalf("leave moved a key owned by %s (to %s); only node-c keys may move", was, now)
			}
		}
	}
	if moved == 0 {
		t.Fatal("leave moved no keys; node-c owned nothing?")
	}

	// Join: add a sixth member. At most ~K/N keys (the new member's fair
	// share) may move, all of them to the joiner.
	joined, err := NewRing(append(append([]string{}, ids...), "node-f"), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved = 0
	for _, key := range keys {
		was, now := full.Owner(key), joined.Owner(key)
		if was != now {
			moved++
			if now != "node-f" {
				t.Fatalf("join moved a key from %s to %s; keys may only move to the joiner", was, now)
			}
		}
	}
	fair := len(keys) / len(joined.Members())
	slack := fair / 4 // vnode placement variance allowance
	if moved > fair+slack {
		t.Fatalf("join moved %d keys, want <= %d (K/N %d + slack %d)", moved, fair+slack, fair, slack)
	}
	if moved == 0 {
		t.Fatal("join moved no keys; node-f owns nothing?")
	}
}

// TestRingVnodeFairness: with default virtual-node weighting every
// member's share of the keyspace stays within ±10% of fair.
func TestRingVnodeFairness(t *testing.T) {
	for _, members := range []int{3, 5, 8} {
		ids := memberIDs(members)
		r, err := NewRing(ids, 0)
		if err != nil {
			t.Fatal(err)
		}
		keys := sampleKeys(100000)
		counts := map[string]int{}
		for _, key := range keys {
			counts[r.Owner(key)]++
		}
		fair := float64(len(keys)) / float64(members)
		for _, id := range ids {
			share := float64(counts[id]) / fair
			if share < 0.9 || share > 1.1 {
				t.Errorf("%d members: %s owns %.1f%% of fair share, want within ±10%%",
					members, id, share*100)
			}
		}
	}
}

// TestRegionKeyDeterministic: the routing key is a pure function of the
// decision point, and distinct points spread across the keyspace.
func TestRegionKeyDeterministic(t *testing.T) {
	if RegionKey("gemm", 42) != RegionKey("gemm", 42) {
		t.Fatal("RegionKey is not deterministic")
	}
	seen := map[uint64]string{}
	for _, region := range []string{"gemm", "mvt1", "atax", "gesummv"} {
		for h := uint64(0); h < 64; h++ {
			key := RegionKey(region, h*0x9e3779b97f4a7c15)
			at := fmt.Sprintf("%s/%d", region, h)
			if prev, dup := seen[key]; dup {
				t.Fatalf("key collision between %s and %s", prev, at)
			}
			seen[key] = at
		}
	}
}

func TestNewRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty member ID accepted")
	}
}
