// Package cluster shards the decision plane across replicas: a
// consistent-hash ring assigns every (region, bindings) key an owner
// replica and a deterministic successor order, and a lightweight gossip
// layer spreads member health plus versioned replica state (calibration
// factors, learner snapshots) so any replica can serve any key warm.
//
// Membership is static-seed: the replica set is configuration, the ring
// is a pure function of it, and every replica computes the identical
// ring. Gossip never changes ownership — it only annotates members with
// health (alive, suspect, dead) that the cluster client uses to order
// failover, and piggybacks state so a failover target answers with the
// same corrections the owner would have used.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per member when Config leaves
// it zero. Per-member share variance shrinks as 1/sqrt(vnodes); 1024
// points keeps every member within a few percent of fair share for
// small clusters while ring construction stays trivially cheap.
const DefaultVnodes = 1024

// fnv-1a, the same hash family attrdb uses for binding keys.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// mix64 is a SplitMix64-style finalizer. FNV-1a of short, similar
// strings ("node-a#17") leaves the high bits poorly mixed, which skews
// vnode placement; the avalanche pass makes point positions effectively
// uniform so member shares concentrate around fair.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// RegionKey maps a decision point — region name plus
// attrdb.BindingsHash of its bindings — onto the ring keyspace. Every
// replica computes the same key for the same point, so routing needs no
// coordination.
func RegionKey(region string, bindingsHash uint64) uint64 {
	h := fnvString(uint64(fnvOffset), region)
	for i := 0; i < 64; i += 8 {
		h ^= (bindingsHash >> i) & 0xff
		h *= fnvPrime
	}
	return mix64(h)
}

// Ring is a consistent-hash ring over a fixed member set. It is
// immutable after construction; membership changes build a new ring.
type Ring struct {
	ids    []string // sorted, deduplicated member IDs
	vnodes int
	points []point // sorted by hash
}

type point struct {
	hash uint64
	id   string
}

// NewRing builds a ring with vnodes virtual nodes per member
// (DefaultVnodes if vnodes <= 0). IDs are deduplicated; at least one is
// required. Given the same IDs and vnodes, every caller builds the
// identical ring whatever the input order.
func NewRing(ids []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(ids))
	sorted := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty member ID")
		}
		if !seen[id] {
			seen[id] = true
			sorted = append(sorted, id)
		}
	}
	if len(sorted) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(sorted)
	r := &Ring{ids: sorted, vnodes: vnodes, points: make([]point, 0, len(sorted)*vnodes)}
	for _, id := range sorted {
		// Each virtual node hashes "id#k". Ties across members are
		// broken by ID so the point order is total and deterministic.
		base := fnvString(uint64(fnvOffset), id)
		for k := 0; k < vnodes; k++ {
			h := mix64(fnvString(fnvString(base, "#"), strconv.Itoa(k)))
			r.points = append(r.points, point{hash: h, id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// Members returns the ring's member IDs, sorted. The slice is shared;
// callers must not mutate it.
func (r *Ring) Members() []string { return r.ids }

// Vnodes returns the virtual-node count per member.
func (r *Ring) Vnodes() int { return r.vnodes }

// at returns the index of the first ring point at or after key,
// wrapping past the top of the keyspace.
func (r *Ring) at(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the member owning key: the member whose virtual node is
// first at or clockwise-after the key.
func (r *Ring) Owner(key uint64) string {
	return r.points[r.at(key)].id
}

// Successors returns up to n distinct members in ring order starting at
// the key's owner: the owner first, then the members whose virtual
// nodes follow clockwise. This is the deterministic failover and
// hedging order for the key — every replica computes the same list.
func (r *Ring) Successors(key uint64, n int) []string {
	if n <= 0 || n > len(r.ids) {
		n = len(r.ids)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.at(key)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}
