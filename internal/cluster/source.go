package cluster

import "sync/atomic"

// VersionedSource adapts a mergeable state container — anything with a
// deterministic snapshot and a commutative, idempotent merge, like
// audit.Calibrator or learn.Learner — into a gossip Source. Gossip
// replicates a member's state blob only when its version grows, so the
// wrapper keeps a monotonic counter: the owner bumps it whenever local
// observations change the state (Bump), and Apply bumps it whenever a
// remote blob merges in new facts, which is what lets merged state keep
// flowing to peers that never saw the original source.
type VersionedSource struct {
	name     string
	ver      atomic.Uint64
	snapshot func() []byte
	merge    func(data []byte) (changed bool, err error)
}

// NewVersionedSource wraps the snapshot/merge pair under the given
// gossip source name.
func NewVersionedSource(name string, snapshot func() []byte, merge func([]byte) (bool, error)) *VersionedSource {
	return &VersionedSource{name: name, snapshot: snapshot, merge: merge}
}

// Bump marks the local state as changed; the next gossip exchange
// re-snapshots and replicates it. Call after local mutations (an
// observation fed to the calibrator, a learner update).
func (s *VersionedSource) Bump() { s.ver.Add(1) }

// Version returns the current local state version.
func (s *VersionedSource) Version() uint64 { return s.ver.Load() }

// Source returns the gossip Source to register on a Node.
func (s *VersionedSource) Source() Source {
	return Source{
		Name:     s.name,
		Snapshot: func() (uint64, []byte) { return s.ver.Load(), s.snapshot() },
		Apply: func(origin string, version uint64, data []byte) error {
			changed, err := s.merge(data)
			if err != nil {
				return err
			}
			if changed {
				s.ver.Add(1)
			}
			return nil
		},
	}
}
