package cluster

// Cluster-plane chaos: real gossip nodes exchanging over HTTP through a
// faultnet Mesh (one directed proxy per node→node edge), carrying real
// calibrator state. TestChaos* tests run under `make chaos` with the
// race detector on; assertions are convergence invariants for a fixed
// mesh seed, never timing sequences.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/hybridsel/hybridsel/internal/audit"
	"github.com/hybridsel/hybridsel/internal/faultnet"
)

// gossipChaosRig is three gossip nodes, each with its own calibrator,
// wired through per-edge fault proxies.
type gossipChaosRig struct {
	mesh  *faultnet.Mesh
	ids   []string
	nodes map[string]*Node
	cals  map[string]*audit.Calibrator
	srcs  map[string]*VersionedSource
}

func newGossipChaosRig(t *testing.T, seed int64) *gossipChaosRig {
	t.Helper()
	rig := &gossipChaosRig{
		mesh:  faultnet.NewMesh(seed),
		ids:   []string{"node-a", "node-b", "node-c"},
		nodes: map[string]*Node{},
		cals:  map[string]*audit.Calibrator{},
		srcs:  map[string]*VersionedSource{},
	}
	t.Cleanup(func() { _ = rig.mesh.Close() })

	// The gossip servers must exist before the nodes (peer URLs go into
	// each node's config), so serve through an indirection that resolves
	// to the node's handler once it is built.
	handlers := map[string]http.Handler{}
	gossipURL := map[string]string{}
	for _, id := range rig.ids {
		id := id
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h := handlers[id]
			if h == nil {
				http.Error(w, "not up yet", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		gossipURL[id] = ts.URL
	}
	// One directed fault edge per (from, to) pair.
	edge := map[string]string{}
	for _, from := range rig.ids {
		for _, to := range rig.ids {
			if from == to {
				continue
			}
			addr, err := rig.mesh.Link(from, to, gossipURL[to])
			if err != nil {
				t.Fatal(err)
			}
			edge[from+">"+to] = "http://" + addr
		}
	}
	for _, id := range rig.ids {
		var peers []Member
		for _, peer := range rig.ids {
			if peer != id {
				peers = append(peers, Member{ID: peer, Gossip: edge[id+">"+peer]})
			}
		}
		node, err := New(Config{
			Self:      Member{ID: id, Gossip: gossipURL[id]},
			Peers:     peers,
			Vnodes:    64,
			Transport: &HTTPTransport{},
		})
		if err != nil {
			t.Fatal(err)
		}
		cal := audit.NewCalibrator(0.25)
		src := NewVersionedSource("calibration", cal.SnapshotState, cal.MergeState)
		node.Register(src.Source())
		handlers[id] = node.Handler()
		rig.nodes[id] = node
		rig.cals[id] = cal
		rig.srcs[id] = src
	}
	return rig
}

func (rig *gossipChaosRig) tickAll(rounds int) {
	for i := 0; i < rounds; i++ {
		for _, id := range rig.ids {
			rig.nodes[id].Tick(context.Background())
		}
	}
}

// TestChaosSplitBrainHealConverges: partition node-a away from
// {node-b, node-c}, feed each side different calibration evidence, heal,
// and require every replica's calibration state to be byte-identical —
// the warm-any-replica guarantee survives a split-brain.
func TestChaosSplitBrainHealConverges(t *testing.T) {
	rig := newGossipChaosRig(t, 13)
	rig.tickAll(2) // everyone meets everyone while healthy

	rig.mesh.Partition([]string{"node-a"}, []string{"node-b", "node-c"})

	// Divergent evidence on each side of the split.
	rig.cals["node-a"].Observe("gemm", map[string]float64{"cpu/base": 0.5, "gpu/base": -0.125})
	rig.srcs["node-a"].Bump()
	rig.cals["node-b"].Observe("mvt1", map[string]float64{"gpu/base": 0.25})
	rig.srcs["node-b"].Bump()

	rig.tickAll(4)

	// The majority side converged with itself but cannot see node-a's
	// region; node-a cannot see theirs.
	if !bytes.Equal(rig.cals["node-b"].SnapshotState(), rig.cals["node-c"].SnapshotState()) {
		t.Fatal("same-side replicas diverged during the partition")
	}
	if bytes.Equal(rig.cals["node-a"].SnapshotState(), rig.cals["node-b"].SnapshotState()) {
		t.Fatal("state crossed the partition")
	}
	// Both sides have declared the other unreachable: a genuine
	// split-brain, not a quiet blip.
	if h := rig.nodes["node-b"].HealthOf("node-a"); h == Alive {
		t.Fatalf("majority side still thinks node-a is %v", h)
	}
	if h := rig.nodes["node-a"].HealthOf("node-b"); h == Alive {
		t.Fatalf("minority side still thinks node-b is %v", h)
	}

	rig.mesh.Heal()
	rig.tickAll(6)

	// Byte-identical calibration everywhere, containing both sides'
	// evidence.
	ref := rig.cals["node-a"].SnapshotState()
	for _, id := range rig.ids {
		if got := rig.cals[id].SnapshotState(); !bytes.Equal(got, ref) {
			t.Fatalf("post-heal calibration on %s differs:\n %s\n vs\n %s", id, got, ref)
		}
	}
	var st audit.CalState
	if err := json.Unmarshal(ref, &st); err != nil {
		t.Fatal(err)
	}
	for _, region := range []string{"gemm", "mvt1"} {
		if _, ok := st.Regions[region]; !ok {
			t.Fatalf("merged state lost region %q: %s", region, ref)
		}
	}
	// And the rumor mill has healed too: everyone sees everyone alive.
	for _, id := range rig.ids {
		for _, peer := range rig.ids {
			if h := rig.nodes[id].HealthOf(peer); h != Alive {
				t.Fatalf("post-heal %s sees %s as %v", id, peer, h)
			}
		}
	}
}

// TestChaosGossipNodeKillRecovery: kill one node's inbound edges, let
// the survivors declare it dead, then heal — the dead verdict must be
// refuted and calibration written on the survivors while it was down
// must reach it.
func TestChaosGossipNodeKillRecovery(t *testing.T) {
	rig := newGossipChaosRig(t, 29)
	rig.tickAll(2)

	// A crash is silent in both directions (inbound-only faults would
	// leave node-c dialing out, and direct contact resurrects it — SWIM
	// treats an answering peer as alive). Round-robin probing touches
	// each peer every other tick: six rounds is three failed probes, one
	// past the dead threshold.
	rig.mesh.Partition([]string{"node-a", "node-b"}, []string{"node-c"})
	rig.tickAll(6)
	if h := rig.nodes["node-a"].HealthOf("node-c"); h != Dead {
		t.Fatalf("after sustained kill, node-a sees node-c as %v, want %v", h, Dead)
	}

	rig.cals["node-a"].Observe("gemm", map[string]float64{"cpu/base": 0.75})
	rig.srcs["node-a"].Bump()

	rig.mesh.Heal()
	rig.tickAll(6)

	if h := rig.nodes["node-a"].HealthOf("node-c"); h != Alive {
		t.Fatalf("post-heal node-a sees node-c as %v", h)
	}
	if !bytes.Equal(rig.cals["node-c"].SnapshotState(), rig.cals["node-a"].SnapshotState()) {
		t.Fatal("restarted node did not pick up calibration written while it was down")
	}
	if rig.nodes["node-c"].Status().Refutes == 0 {
		t.Fatal("node-c never refuted its death rumor")
	}
}
