package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hybridsel/hybridsel/internal/wire"
)

// Health is a member's liveness verdict. The values mirror the wire
// constants: higher is worse, and at equal incarnation the worse verdict
// wins a merge until the subject refutes it by bumping its incarnation.
type Health byte

const (
	Alive   Health = wire.GossipAlive
	Suspect Health = wire.GossipSuspect
	Dead    Health = wire.GossipDead
)

func (h Health) String() string {
	switch h {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("health(%d)", byte(h))
}

// Member identifies one replica: its ring ID, the base URL its decide
// surface is served on, and the URL its gossip exchanges are served on
// (empty for members this replica never gossips with directly).
type Member struct {
	ID     string
	Addr   string
	Gossip string
}

// Source is one named, versioned state feed piggybacked on gossip: the
// calibrator's EWMA factors, the learner's snapshot. Snapshot serializes
// the local replica's current state under a version that increases
// whenever the state changes; Apply folds a peer replica's state in (it
// must be an idempotent merge — gossip redelivers freely). Apply is
// never called for states originated by the local member.
type Source struct {
	Name     string
	Snapshot func() (version uint64, data []byte)
	Apply    func(origin string, version uint64, data []byte) error
}

// Config configures a cluster node.
type Config struct {
	// Self identifies the local replica; Peers the rest of the static
	// membership (entries matching Self's ID are ignored).
	Self  Member
	Peers []Member
	// Vnodes is the virtual-node count per member (DefaultVnodes if 0).
	Vnodes int
	// Transport performs gossip exchanges. Defaults to an HTTPTransport.
	Transport Transport
	// SuspectAfter and DeadAfter are the consecutive direct-exchange
	// failures after which a peer is locally marked suspect and dead
	// (defaults 1 and 3).
	SuspectAfter int
	DeadAfter    int
	// Logger receives gossip lifecycle events; nil discards them.
	Logger *slog.Logger
}

// memberState is the node's view of one member.
type memberState struct {
	Member
	incarnation uint64
	health      Health
	fails       int // consecutive direct-exchange failures, local observation
	states      map[string]stateBlob
}

type stateBlob struct {
	version uint64
	data    []byte
}

// Node is one replica's cluster brain: the static ring, the gossip
// membership view, and the registered state sources.
type Node struct {
	cfg  Config
	ring *Ring
	log  *slog.Logger

	mu      sync.Mutex
	members map[string]*memberState
	sources []Source
	rotate  int // round-robin cursor over gossip peers

	ticks         atomic.Uint64
	exchanges     atomic.Uint64
	exchangeFails atomic.Uint64
	statesApplied atomic.Uint64
	stateErrors   atomic.Uint64
	refutes       atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// New builds a node from the static membership. The ring covers Self
// plus every peer; all members start alive at incarnation 0.
func New(cfg Config) (*Node, error) {
	if cfg.Self.ID == "" {
		return nil, fmt.Errorf("cluster: config needs a self member ID")
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 1
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter + 2
	}
	if cfg.Transport == nil {
		cfg.Transport = &HTTPTransport{}
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	members := map[string]*memberState{
		cfg.Self.ID: {Member: cfg.Self, health: Alive, states: map[string]stateBlob{}},
	}
	ids := []string{cfg.Self.ID}
	for _, p := range cfg.Peers {
		if p.ID == "" {
			return nil, fmt.Errorf("cluster: peer with empty ID")
		}
		if p.ID == cfg.Self.ID || members[p.ID] != nil {
			continue
		}
		members[p.ID] = &memberState{Member: p, health: Alive, states: map[string]stateBlob{}}
		ids = append(ids, p.ID)
	}
	ring, err := NewRing(ids, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	return &Node{cfg: cfg, ring: ring, log: log, members: members}, nil
}

// Self returns the local member's ID.
func (n *Node) Self() string { return n.cfg.Self.ID }

// Ring returns the static membership ring. Ownership never follows
// health: a dead owner's keys are served by its ring successors via the
// client's failover order, and come back the moment it does.
func (n *Node) Ring() *Ring { return n.ring }

// Register adds a state source to piggyback on gossip. Register all
// sources before the first Tick or Handler call.
func (n *Node) Register(src Source) {
	if src.Name == "" || src.Snapshot == nil || src.Apply == nil {
		panic("cluster: source needs a name, a Snapshot and an Apply")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, s := range n.sources {
		if s.Name == src.Name {
			panic("cluster: duplicate source " + src.Name)
		}
	}
	n.sources = append(n.sources, src)
}

// Addr returns a member's decide base URL ("" for unknown members).
func (n *Node) Addr(id string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m := n.members[id]; m != nil {
		return m.Addr
	}
	return ""
}

// HealthOf returns the node's current verdict for a member (Dead for
// unknown members, so routing treats them as last resort).
func (n *Node) HealthOf(id string) Health {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m := n.members[id]; m != nil {
		return m.health
	}
	return Dead
}

// snapshotView builds the full-state gossip message under the lock,
// refreshing the self entry's states from the registered sources first.
func (n *Node) snapshotView() *wire.GossipMsg {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.snapshotViewLocked()
}

func (n *Node) snapshotViewLocked() *wire.GossipMsg {
	self := n.members[n.cfg.Self.ID]
	for _, src := range n.sources {
		v, data := src.Snapshot()
		if blob, ok := self.states[src.Name]; !ok || v > blob.version {
			self.states[src.Name] = stateBlob{version: v, data: data}
		}
	}
	ids := make([]string, 0, len(n.members))
	for id := range n.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	msg := &wire.GossipMsg{From: n.cfg.Self.ID}
	for _, id := range ids {
		m := n.members[id]
		e := wire.GossipEntry{
			ID:          m.ID,
			Addr:        m.Addr,
			Incarnation: m.incarnation,
			Health:      byte(m.health),
		}
		names := make([]string, 0, len(m.states))
		for name := range m.states {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			blob := m.states[name]
			e.States = append(e.States, wire.GossipState{Name: name, Version: blob.version, Data: blob.data})
		}
		msg.Entries = append(msg.Entries, e)
	}
	return msg
}

// Merge folds a received gossip view into the node's membership. It is
// the core convergence rule:
//
//   - Unknown members are adopted (static-seed normally makes this moot,
//     but a misconfigured partial peer list still converges).
//   - Higher incarnation wins a member's row outright. At equal
//     incarnation the worse health wins, so bad news spreads without the
//     subject's cooperation.
//   - A claim that the local member is suspect or dead at an incarnation
//     at or above its own is refuted: the local member bumps its
//     incarnation past the claim and re-asserts itself alive, which
//     outranks the rumor everywhere it has spread.
//   - States merge independently of health, newest version per (member,
//     source) wins; fresh states from other origins are folded into the
//     local replica via the matching Source.Apply.
func (n *Node) Merge(msg *wire.GossipMsg) {
	type apply struct {
		src     Source
		origin  string
		version uint64
		data    []byte
	}
	var applies []apply
	n.mu.Lock()
	for _, e := range msg.Entries {
		m := n.members[e.ID]
		if m == nil {
			m = &memberState{
				Member: Member{ID: e.ID, Addr: e.Addr},
				health: Dead, // unseen and unconfigured: assume the worst
				states: map[string]stateBlob{},
			}
			n.members[e.ID] = m
		}
		if e.ID == n.cfg.Self.ID {
			if Health(e.Health) != Alive && e.Incarnation >= m.incarnation {
				m.incarnation = e.Incarnation + 1
				m.health = Alive
				n.refutes.Add(1)
				n.log.Info("cluster: refuted rumor about self",
					"claim", Health(e.Health).String(), "incarnation", m.incarnation)
			}
			continue
		}
		if e.Incarnation > m.incarnation {
			m.incarnation = e.Incarnation
			m.health = Health(e.Health)
			m.fails = 0
		} else if e.Incarnation == m.incarnation && Health(e.Health) > m.health {
			m.health = Health(e.Health)
		}
		if m.Addr == "" {
			m.Addr = e.Addr
		}
		for _, st := range e.States {
			blob, ok := m.states[st.Name]
			if ok && st.Version <= blob.version {
				continue
			}
			m.states[st.Name] = stateBlob{version: st.Version, data: st.Data}
			for _, src := range n.sources {
				if src.Name == st.Name {
					applies = append(applies, apply{src: src, origin: e.ID, version: st.Version, data: st.Data})
				}
			}
		}
	}
	n.mu.Unlock()
	// Apply outside the lock: merges take the calibrator/learner locks
	// and may be slow; gossip bookkeeping must not block on them.
	for _, a := range applies {
		if err := a.src.Apply(a.origin, a.version, a.data); err != nil {
			n.stateErrors.Add(1)
			n.log.Warn("cluster: apply gossiped state failed",
				"source", a.src.Name, "origin", a.origin, "err", err)
			continue
		}
		n.statesApplied.Add(1)
	}
}

// gossipPeers returns the directly reachable peers (gossip URL known),
// sorted by ID.
func (n *Node) gossipPeers() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []Member
	for id, m := range n.members {
		if id != n.cfg.Self.ID && m.Gossip != "" {
			out = append(out, m.Member)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Tick runs one gossip round: exchange full state with the next peer in
// a deterministic round-robin rotation. Exchange failures feed the
// suspect/dead ladder; successes reset it. Calling Tick from a test
// instead of Start makes gossip progress fully deterministic.
func (n *Node) Tick(ctx context.Context) {
	n.ticks.Add(1)
	peers := n.gossipPeers()
	if len(peers) == 0 {
		return
	}
	n.mu.Lock()
	peer := peers[n.rotate%len(peers)]
	n.rotate++
	n.mu.Unlock()
	n.exchange(ctx, peer)
}

// exchange performs one full-state exchange with peer and merges the
// response.
func (n *Node) exchange(ctx context.Context, peer Member) {
	n.exchanges.Add(1)
	resp, err := n.cfg.Transport.Exchange(ctx, peer.Gossip, n.snapshotView())
	if err != nil {
		n.exchangeFails.Add(1)
		n.noteExchangeFailure(peer.ID)
		return
	}
	n.noteExchangeSuccess(peer.ID)
	n.Merge(resp)
}

func (n *Node) noteExchangeFailure(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	m := n.members[id]
	if m == nil {
		return
	}
	m.fails++
	was := m.health
	switch {
	case m.fails >= n.cfg.DeadAfter:
		m.health = Dead
	case m.fails >= n.cfg.SuspectAfter && m.health == Alive:
		m.health = Suspect
	}
	if m.health != was {
		n.log.Info("cluster: peer health degraded",
			"peer", id, "health", m.health.String(), "fails", m.fails)
	}
}

func (n *Node) noteExchangeSuccess(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	m := n.members[id]
	if m == nil {
		return
	}
	m.fails = 0
	// Direct contact is better evidence than any rumor: the peer
	// answered, so it is alive right now. Its own refutation (carried in
	// the response we are about to merge) re-asserts this at a higher
	// incarnation for the rest of the cluster.
	if m.health != Alive {
		m.health = Alive
		n.log.Info("cluster: peer recovered", "peer", id)
	}
}

// Start launches the gossip loop at the given interval and returns a
// stop function that blocks until the loop exits. Tests prefer driving
// Tick directly.
func (n *Node) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	n.stop = make(chan struct{})
	n.done = make(chan struct{})
	go func() {
		defer close(n.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				n.Tick(ctx)
				cancel()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(n.stop)
			<-n.done
		})
	}
}

// discardHandler is a slog.Handler that drops everything, so the node
// can log unconditionally.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
