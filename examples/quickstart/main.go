// Quickstart: register one OpenMP-style target region with the offloading
// runtime and let the hybrid analytical selector decide where it runs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
)

func main() {
	// A POWER9 host with a Tesla V100 over NVLink 2 — the paper's
	// primary experimental platform.
	rt := offload.NewRuntime(offload.Config{
		Platform: machine.PlatformP9V100(),
		Policy:   offload.ModelGuided,
	})

	// "Compile" the GEMM target region: the runtime outlines it, runs
	// the static analyses (instruction loadout, IPDA strides) and stores
	// them in the program attribute database, returning a region handle.
	gemm, err := polybench.Get("gemm")
	if err != nil {
		log.Fatal(err)
	}
	region, err := rt.Register(gemm.IR)
	if err != nil {
		log.Fatal(err)
	}

	// "Run" the program: on reaching the region the runtime binds the
	// runtime values (n), completes both analytical models (memoizing the
	// decision per bindings), and dispatches to the faster predicted
	// target.
	for _, n := range []int64{128, 1100, 4096, 4096} {
		out, err := region.Launch(map[string]int64{"n": n})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%-5d -> %s   predicted cpu %.3gs gpu %.3gs   executed %.3gs   (decision %v, cached %v)\n",
			n, out.Target, out.PredCPUSeconds, out.PredGPUSeconds,
			out.ActualSeconds, out.DecisionOverhead, out.CacheHit)
	}

	// Every stage is instrumented.
	fmt.Println()
	fmt.Print(rt.Metrics())
}
