// Generation study: the paper's Section III experiment in miniature.
// Pick kernels with different memory characters and measure how the GPU
// offloading decision changes between a POWER8+K80 (PCIe) platform and a
// POWER9+V100 (NVLink 2) platform — the same computation, two answers.
//
//	go run ./examples/generationstudy
package main

import (
	"fmt"
	"log"

	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/sim"
	"github.com/hybridsel/hybridsel/internal/stats"
)

func main() {
	kernels := []string{"2dconv", "3dconv", "syrk", "gemm", "gesummv"}
	platforms := []machine.Platform{
		machine.PlatformP8K80(),
		machine.PlatformP8P100(),
		machine.PlatformP9V100(),
	}

	t := stats.NewTable(
		"GPU offloading speedup over the 160-thread host (benchmark mode)",
		"kernel", platforms[0].Name, platforms[1].Name, platforms[2].Name, "verdict")
	for _, name := range kernels {
		k, err := polybench.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		b := k.Bindings(polybench.Benchmark)
		speedup := make([]float64, len(platforms))
		for i, plat := range platforms {
			cpu, err := sim.SimulateCPU(k.IR, plat.CPU, b,
				sim.CPUConfig{Threads: plat.CPU.Threads()})
			if err != nil {
				log.Fatal(err)
			}
			gpu, err := sim.SimulateGPU(k.IR, plat.GPU, plat.Link, b,
				sim.GPUConfig{IncludeTransfer: true})
			if err != nil {
				log.Fatal(err)
			}
			speedup[i] = cpu.Seconds / gpu.Seconds
		}
		verdict := "same decision"
		for i := 1; i < len(speedup); i++ {
			if (speedup[0] >= 1) != (speedup[i] >= 1) {
				verdict = "DECISION FLIPS across generations"
			}
		}
		t.AddRow(name, fmt.Sprintf("%.2fx", speedup[0]),
			fmt.Sprintf("%.2fx", speedup[1]),
			fmt.Sprintf("%.2fx", speedup[2]), verdict)
	}
	fmt.Println(t.String())
	fmt.Println("A single GPU generation can sway the offloading decision " +
		"drastically (paper Section III): performance models must be tuned " +
		"per generation.")
}
