// Split execution: cooperative CPU+GPU execution of one parallel loop.
// The paper's introduction motivates target selection with work that
// splits computations across both processors (Valero-Lara et al.); the
// Split policy uses the two analytical models to find the host/device
// share at which both sides finish together.
//
//	go run ./examples/splitexecution
package main

import (
	"fmt"
	"log"

	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/stats"
)

func main() {
	rt := offload.NewRuntime(offload.Config{
		Platform: machine.PlatformP9V100(),
		Policy:   offload.Split,
	})
	// mvt2 at benchmark size is nearly balanced between host and device
	// — the interesting case; gemm and gesummv are lopsided and should
	// degenerate to a single target.
	for _, name := range []string{"mvt2", "atax2", "gemm", "gesummv"} {
		k, err := polybench.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rt.Register(k.IR); err != nil {
			log.Fatal(err)
		}
	}

	t := stats.NewTable("Cooperative split execution (POWER9 + V100, benchmark mode)",
		"kernel", "decision", "host share", "cpu-only", "gpu-only", "executed")
	for _, name := range []string{"mvt2", "atax2", "gemm", "gesummv"} {
		k, _ := polybench.Get(name)
		b := k.Bindings(polybench.Benchmark)
		out, err := rt.Launch(name, b)
		if err != nil {
			log.Fatal(err)
		}
		cpuOnly, err := rt.Execute(name, offload.TargetCPU, b)
		if err != nil {
			log.Fatal(err)
		}
		gpuOnly, err := rt.Execute(name, offload.TargetGPU, b)
		if err != nil {
			log.Fatal(err)
		}
		share := "-"
		if out.Target == offload.TargetSplit {
			share = fmt.Sprintf("%.0f%%", out.SplitFraction*100)
		}
		t.AddRow(name, out.Target.String(), share,
			fmt.Sprintf("%.3gs", cpuOnly), fmt.Sprintf("%.3gs", gpuOnly),
			fmt.Sprintf("%.3gs", out.ActualSeconds))
	}
	fmt.Println(t.String())
	fmt.Println("When host and device times are close, splitting the " +
		"iteration space beats either target alone; when one side " +
		"dominates, the policy degenerates to single-target selection.")
}
