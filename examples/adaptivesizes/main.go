// Adaptive sizes: the motivating scenario for runtime (rather than
// compile-time) target selection. The same matrix-multiply region is
// launched with growing problem sizes; the selector keeps small instances
// on the host — where fork/transfer overheads would dominate a GPU launch
// — and offloads once the computation amortizes them.
//
//	go run ./examples/adaptivesizes
package main

import (
	"fmt"
	"log"

	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/stats"
)

func main() {
	rt := offload.NewRuntime(offload.Config{
		Platform: machine.PlatformP9V100(),
		Policy:   offload.ModelGuided,
	})
	gemm, err := polybench.Get("gemm")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.Register(gemm.IR); err != nil {
		log.Fatal(err)
	}

	t := stats.NewTable(
		"gemm: model-guided target across problem sizes (POWER9 + V100)",
		"n", "pred cpu", "pred gpu", "target", "executed")
	var flipped string
	prev := offload.TargetCPU
	for _, n := range []int64{16, 32, 64, 128, 256, 512, 1024, 2048} {
		out, err := rt.Launch("gemm", map[string]int64{"n": n})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(fmt.Sprint(n),
			fmt.Sprintf("%.3gs", out.PredCPUSeconds),
			fmt.Sprintf("%.3gs", out.PredGPUSeconds),
			out.Target.String(),
			fmt.Sprintf("%.3gs", out.ActualSeconds))
		if out.Target == offload.TargetGPU && prev == offload.TargetCPU && flipped == "" {
			flipped = fmt.Sprintf("selector crosses over to the GPU at n=%d", n)
		}
		prev = out.Target
	}
	fmt.Println(t.String())
	if flipped == "" {
		flipped = "no crossover in this size range"
	}
	fmt.Println(flipped)
	fmt.Println("\nThis is why the decision needs runtime values: a 16x16 " +
		"multiply makes no sense on a GPU, a 2048x2048 one very much does " +
		"(paper Section V-B).")
}
