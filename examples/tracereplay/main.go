// Tracereplay: record every decision a runtime takes as a JSONL launch
// trace, then replay the trace through a fresh runtime and verify the
// decision sequence is byte-identical. This is the reproducibility story
// of the analytical selector: the same attributes, bindings and machine
// description always produce the same selection, so a production trace
// (e.g. recorded by `hybridseld -trace`) doubles as a regression test.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/symbolic"
	"github.com/hybridsel/hybridsel/internal/trace"
)

func newRuntime(rec *trace.Writer) *offload.Runtime {
	cfg := offload.Config{
		Platform: machine.PlatformP9V100(),
		Policy:   offload.ModelGuided,
	}
	if rec != nil {
		// The trace writer observes every completed decision.
		cfg.Observer = rec.Observer()
	}
	rt := offload.NewRuntime(cfg)
	for _, name := range []string{"gemm", "mvt1", "2dconv"} {
		k, err := polybench.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rt.Register(k.IR); err != nil {
			log.Fatal(err)
		}
	}
	return rt
}

func main() {
	// Phase 1: record. Drive a small mixed workload and capture each
	// decision (region, bindings, policy, target, both predictions).
	var recorded bytes.Buffer
	rec := trace.NewWriter(&recorded)
	rt := newRuntime(rec)
	workload := []struct {
		region string
		n      int64
	}{
		{"gemm", 128}, {"gemm", 1100}, {"mvt1", 4096},
		{"2dconv", 9600}, {"gemm", 1100}, {"mvt1", 512},
	}
	for _, w := range workload {
		out, err := rt.Launch(w.region, symbolic.Bindings{"n": w.n})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("record  %-8s n=%-6d -> %-5s (pred cpu %.3gs, gpu %.3gs)\n",
			w.region, w.n, out.Target, out.PredCPUSeconds, out.PredGPUSeconds)
	}
	if err := rec.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecorded %d decisions (%d bytes of JSONL)\n\n",
		rec.Len(), recorded.Len())

	// Phase 2: replay through a brand-new runtime (fresh caches, fresh
	// attribute database) while recording again.
	recs, err := trace.Read(bytes.NewReader(recorded.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	var replayed bytes.Buffer
	rec2 := trace.NewWriter(&replayed)
	rt2 := newRuntime(rec2)
	res, err := trace.Replay(rt2, recs, true)
	if err != nil {
		log.Fatal(err)
	}
	if err := rec2.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d/%d decisions matched\n", res.Matched, res.Total)
	if res.First != nil {
		log.Fatalf("divergence at seq %d: %s want %q got %q",
			res.First.Seq, res.First.Field, res.First.Want, res.First.Got)
	}

	// Phase 3: the strongest check — the re-recorded trace is the same
	// bytes as the original.
	if !bytes.Equal(recorded.Bytes(), replayed.Bytes()) {
		log.Fatal("replayed trace differs from recorded trace")
	}
	fmt.Println("replayed trace is byte-identical to the recording")
}
