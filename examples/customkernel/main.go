// Custom kernel: build the paper's running example —
//
//	#pragma omp teams distribute parallel for
//	for (int a = 0; a < max; a++)
//	    A[max * a] = 2.0 * A[max * a];
//
// — in the IR, run the Iteration Point Difference Analysis on it, and
// watch the symbolic stride [max] resolve to opposite coalescing verdicts
// (and opposite target decisions) for different runtime values of max.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"github.com/hybridsel/hybridsel/internal/ipda"
	"github.com/hybridsel/hybridsel/internal/ir"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

func main() {
	max := ir.V("max")
	kernel := &ir.Kernel{
		Name:   "paper-example",
		Params: []string{"max"},
		Arrays: []*ir.Array{ir.Arr("A", ir.F64, max.Mul(max))},
		Body: []ir.Stmt{
			ir.ParFor("a", ir.N(0), max,
				ir.Store(ir.R("A", max.Mul(ir.V("a"))),
					ir.FMul(ir.F(2), ir.Ld("A", max.Mul(ir.V("a")))))),
		},
	}
	if err := kernel.Validate(); err != nil {
		log.Fatal(err)
	}

	// Static analysis: the stride is the symbolic expression [max].
	res, err := ipda.Analyze(kernel, ir.DefaultCountOptions())
	if err != nil {
		log.Fatal(err)
	}
	site := res.Sites[len(res.Sites)-1]
	fmt.Printf("IPD_thread(%s) = %s   (symbolic, resolved at runtime)\n\n",
		site.Access.Ref, site.ThreadStride)

	rt := offload.NewRuntime(offload.Config{
		Platform: machine.PlatformP9V100(),
		Policy:   offload.ModelGuided,
	})
	if _, err := rt.Register(kernel); err != nil {
		log.Fatal(err)
	}

	// Case 1 of the paper: max known -> stride resolves statically-like.
	// Contiguous when max == 1; a strided scatter as max grows.
	for _, m := range []int64{1, 4, 4096} {
		b := symbolic.Bindings{"max": m}
		wa, err := site.ResolveGPU(b, ipda.DefaultWarpGeom())
		if err != nil {
			log.Fatal(err)
		}
		out, err := rt.Launch("paper-example", b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("max=%-5d stride=%5d elems  class=%-11s tx/warp=%-2d -> run on %s (pred cpu %.3gs, gpu %.3gs)\n",
			m, wa.ByteStride/8, wa.Class, wa.Transactions, out.Target,
			out.PredCPUSeconds, out.PredGPUSeconds)
	}
}
