// Package hybridsel's benchmark harness regenerates every table and
// figure of the paper's evaluation at full simulation fidelity:
//
//	go test -bench=. -benchmem
//
// Each benchmark runs the corresponding experiment, prints the rendered
// artifact once, and reports the headline numbers as benchmark metrics
// (geomean speedups, prediction agreement, correlation). Ground-truth
// simulations are memoized in a shared runner, so the full harness costs
// roughly one pass over the suite per platform.
package hybridsel

import (
	"fmt"
	"sync"
	"testing"

	"github.com/hybridsel/hybridsel/internal/epcc"
	"github.com/hybridsel/hybridsel/internal/experiments"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/stats"
)

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

func sharedRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		r, err := experiments.NewRunner(experiments.Options{})
		if err != nil {
			panic(err)
		}
		runner = r
	})
	return runner
}

var printOnce sync.Map

// printArtifact emits a rendered table/figure exactly once per process.
func printArtifact(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

// BenchmarkTable1 regenerates the cross-generation offloading study
// (paper Table I): every Polybench kernel in both dataset modes on
// POWER8+K80/PCIe and POWER9+V100/NVLink2.
func BenchmarkTable1(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Table1()
		if err != nil {
			b.Fatal(err)
		}
		var k80, v100 []float64
		flips := 0
		for _, row := range rows {
			k80 = append(k80, row.K80Speedup)
			v100 = append(v100, row.V100Speedup)
			if (row.K80Speedup >= 1) != (row.V100Speedup >= 1) {
				flips++
			}
		}
		b.ReportMetric(stats.GeoMean(k80), "k80-geomean-x")
		b.ReportMetric(stats.GeoMean(v100), "v100-geomean-x")
		b.ReportMetric(float64(flips), "decision-flips")
		printArtifact("table1", experiments.RenderTable1(rows))
	}
}

// BenchmarkTable2 regenerates the CPU cost-model parameter table (paper
// Table II) by running the EPCC-style micro-benchmarks against the
// simulated POWER9 host.
func BenchmarkTable2(b *testing.B) {
	cpu := machine.POWER9()
	for i := 0; i < b.N; i++ {
		m, err := epcc.Measure(cpu, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.TLBMissPenaltyCycles, "tlb-miss-cycles")
		b.ReportMetric(m.ParallelFixedCycles, "parallel-fixed-cycles")
		printArtifact("table2", epcc.Table2(cpu, m))
	}
}

// BenchmarkTable3 renders the GPU device/bus parameter tables (paper
// Table III) for both accelerator generations.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := experiments.RenderTable3(machine.TeslaV100(), machine.NVLink2())
		k := experiments.RenderTable3(machine.TeslaK80(), machine.PCIe3())
		printArtifact("table3", v+"\n"+k)
	}
}

// benchFigure shares the actual-vs-predicted study between Figures 6/7.
func benchFigure(b *testing.B, m polybench.Mode) {
	r := sharedRunner(b)
	const threads = 4 // the paper's restricted-host configuration
	for i := 0; i < b.N; i++ {
		rows, err := r.Figure(m, threads)
		if err != nil {
			b.Fatal(err)
		}
		var actual, pred []float64
		for _, row := range rows {
			actual = append(actual, row.Actual)
			pred = append(pred, row.Predicted)
		}
		b.ReportMetric(stats.Correlation(actual, pred), "correlation")
		b.ReportMetric(stats.AgreementRate(actual, pred)*100, "correct-calls-%")
		printArtifact("fig"+m.String(), experiments.RenderFigure(rows, m, threads))
	}
}

// BenchmarkFigure6 regenerates the actual-vs-predicted offload speedups in
// test mode against a 4-thread host (paper Figure 6).
func BenchmarkFigure6(b *testing.B) { benchFigure(b, polybench.Test) }

// BenchmarkFigure7 regenerates the actual-vs-predicted offload speedups in
// benchmark mode against a 4-thread host (paper Figure 7).
func BenchmarkFigure7(b *testing.B) { benchFigure(b, polybench.Benchmark) }

// BenchmarkFigure8 regenerates the policy comparison (paper Figure 8):
// always-offload versus the model-guided selector versus the oracle,
// against the 160-thread host, in both dataset modes.
func BenchmarkFigure8(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		for _, m := range []polybench.Mode{polybench.Test, polybench.Benchmark} {
			res, err := r.Figure8(m)
			if err != nil {
				b.Fatal(err)
			}
			suffix := "-test-x"
			if m == polybench.Benchmark {
				suffix = "-bench-x"
			}
			b.ReportMetric(res.AlwaysGeo, "always"+suffix)
			b.ReportMetric(res.GuidedGeo, "guided"+suffix)
			b.ReportMetric(res.OracleGeo, "oracle"+suffix)
			printArtifact("fig8"+m.String(), experiments.RenderFigure8(res))
		}
	}
}

// benchAblation shares the ablation machinery.
func benchAblation(b *testing.B, key, title string, variants []experiments.Variant) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Ablate(polybench.Benchmark, 160, variants)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(row.Agreement*100, row.Variant+"-agree-%")
		}
		printArtifact(key, experiments.RenderAblation(title, rows))
	}
}

// BenchmarkAblationCoalescing contrasts IPDA-derived coalescing inputs
// with the crude all-coalesced / all-uncoalesced assumptions of prior
// work (paper Section IV-C).
func BenchmarkAblationCoalescing(b *testing.B) {
	benchAblation(b, "ab-coal", "Ablation: coalescing source",
		experiments.CoalescingVariants())
}

// BenchmarkAblationMCA contrasts the MCA pipeline estimator with flat
// cycles-per-instruction guesses (paper Section IV-A.1).
func BenchmarkAblationMCA(b *testing.B) {
	benchAblation(b, "ab-cpi", "Ablation: cycles-per-iteration estimator",
		experiments.CPIVariants())
}

// BenchmarkAblationOMPRep toggles the paper's #OMP_Rep extension.
func BenchmarkAblationOMPRep(b *testing.B) {
	benchAblation(b, "ab-omprep", "Ablation: #OMP_Rep factor",
		experiments.OMPRepVariants())
}

// BenchmarkAblationAssumptions contrasts the paper's static counting
// heuristics (128 iterations, 50% branches) with runtime-bound trips.
func BenchmarkAblationAssumptions(b *testing.B) {
	benchAblation(b, "ab-assume", "Ablation: counting heuristics",
		experiments.AssumptionVariants())
}

// BenchmarkSelectorOverhead measures the wall-clock cost of one
// model-guided decision (both model evaluations) — the paper's argument
// for analytical models over ML inference at launch time.
func BenchmarkSelectorOverhead(b *testing.B) {
	k, err := polybench.Get("gemm")
	if err != nil {
		b.Fatal(err)
	}
	plat := machine.PlatformP9V100()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Predict(k, polybench.Test, plat, 160); err != nil {
			b.Fatal(err)
		}
	}
}
