// Command loadgen drives a hybridseld daemon with decision traffic and
// reports throughput and latency percentiles. It can replay a recorded
// launch trace (internal/trace JSONL) or synthesize Polybench-shaped
// traffic: kernels drawn from the suite, binding sets drawn from a
// zipf-like distribution over a few distinct problem sizes — mostly
// repeats (exercising the daemon's cached decision path) with a tail of
// colder sizes.
//
// Two load models:
//
//	-rate 0   closed loop: -concurrency workers issue requests
//	          back-to-back, each waiting for its response.
//	-rate N   open loop: N requests/second are dispatched on schedule
//	          regardless of completions (up to -concurrency*1024 queued
//	          client-side), exposing the daemon's shedding behaviour.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -duration 5s -concurrency 16
//	loadgen -addr http://127.0.0.1:8080 -rate 20000 -duration 10s
//	loadgen -addr http://127.0.0.1:8080 -trace decisions.jsonl -batch 32
//	loadgen -addr http://127.0.0.1:8080 -wait 5s -min-throughput 10000
//
// Resilience runs: -client routes traffic through the production client
// (retries, hedging, circuit breaker, in-process fallback) instead of a
// bare http.Client, and -faults interposes a deterministic fault-injection
// proxy scripted by a scenario (a faultnet preset name or DSL). Combined,
// they are the acceptance run — every request must complete with a
// verdict, remote or fallback:
//
//	loadgen -addr http://127.0.0.1:8080 -client -faults faults30 -duration 10s
//
// Cluster runs: -cluster takes the replica set as comma-separated
// id=base-url pairs and drives the cluster client instead — every key
// routes to its consistent-hash owner, hedges go to the ring successor,
// and a killed replica's traffic fails over without losing verdicts:
//
//	loadgen -cluster node-a=http://h1:8080,node-b=http://h2:8080,node-c=http://h3:8080
//
// Wire format: -wire binary switches the decide traffic to the compact
// frame encoding on POST /v2/decide (internal/wire) — slot-form binding
// vectors going out, ranked-candidate frames coming back. JSON plain
// runs drive the frozen /v1 endpoint; -client runs always speak /v2 and
// in binary mode downgrade to JSON automatically if the daemon is too
// old to answer frames:
//
//	loadgen -addr http://127.0.0.1:8080 -wire binary -batch 64 -duration 5s
//
// -wire stream rides the persistent multiplexed stream transport:
// long-lived connections carrying pipelined decide frames, dialed raw
// at -stream-addr (hybridseld -stream-addr) or negotiated over the
// HTTP port via Upgrade when -stream-addr is empty. Plain stream runs
// pipeline through a small shared connection pool; -client stream runs
// set the production client's Stream mode, failing over to HTTP per
// attempt when a connection dies:
//
//	loadgen -addr http://127.0.0.1:8080 -wire stream -duration 5s
//	loadgen -addr http://127.0.0.1:8080 -stream-addr 127.0.0.1:8090 -wire stream -client
//
// The throughput gate reports accepted decisions per transport
// (http-json / http-binary / stream / local fallback), so a stream run
// that silently fell back to HTTP is visible in the gate line.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hybridsel/hybridsel/internal/attrdb"
	"github.com/hybridsel/hybridsel/internal/client"
	"github.com/hybridsel/hybridsel/internal/faultnet"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/server"
	"github.com/hybridsel/hybridsel/internal/sim"
	"github.com/hybridsel/hybridsel/internal/symbolic"
	"github.com/hybridsel/hybridsel/internal/trace"
	"github.com/hybridsel/hybridsel/internal/wire"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	concurrency := flag.Int("concurrency", 16, "workers (closed loop) / pool size (open loop)")
	rate := flag.Int("rate", 0, "open-loop dispatch rate in req/s (0 = closed loop)")
	batch := flag.Int("batch", 1, "decision requests per HTTP call")
	execute := flag.Bool("execute", false, "request simulated execution, not just the decision")
	traceIn := flag.String("trace", "", "replay this JSONL trace instead of synthesizing traffic")
	kernels := flag.String("kernels", "", "comma-separated kernel subset for synthesis")
	mode := flag.String("mode", "test", "dataset mode for synthesis: test|benchmark")
	distinct := flag.Int("distinct", 4, "distinct binding sets per kernel")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	wait := flag.Duration("wait", 0, "poll /healthz this long for the daemon to come up")
	minThroughput := flag.Float64("min-throughput", 0,
		"exit non-zero if decisions/sec falls below this")
	scrape := flag.Bool("scrape", true, "print daemon-side counters from /metrics after the run")
	useClient := flag.Bool("client", false,
		"route traffic through the resilient client (retries, hedging, breaker, fallback)")
	noFallback := flag.Bool("no-fallback", false,
		"client mode: disable the in-process fallback runtime")
	faults := flag.String("faults", "",
		"front the daemon with a fault-injection proxy scripted by this scenario (preset or DSL)")
	clusterSet := flag.String("cluster", "",
		"route through the cluster client over this replica set (comma-separated id=base-url pairs); "+
			"each key goes to its ring owner with hedging/failover to successors")
	wireFormat := flag.String("wire", "json", "decide encoding: json|binary|stream")
	streamAddr := flag.String("stream-addr", "",
		"raw TCP stream address for -wire stream (empty = HTTP Upgrade on -addr)")
	streamConns := flag.Int("stream-conns", 0,
		"persistent connections for plain -wire stream runs (0 = 2)")
	flag.Parse()

	binary, stream := false, false
	switch *wireFormat {
	case "json":
	case "binary":
		binary = true
	case "stream":
		stream = true
	default:
		fatal(fmt.Errorf("loadgen: -wire %q: want json, binary or stream", *wireFormat))
	}
	if stream && *faults != "" && !*useClient {
		fatal(fmt.Errorf("loadgen: -wire stream -faults needs -client (the HTTP fault proxy cannot carry stream connections)"))
	}
	if *clusterSet != "" && *wireFormat != "json" {
		fatal(fmt.Errorf("loadgen: -cluster supports -wire json only"))
	}
	if *clusterSet != "" && *faults != "" {
		fatal(fmt.Errorf("loadgen: -cluster and -faults are mutually exclusive (a single proxy cannot front a replica set; kill replicas instead)"))
	}

	httpClient := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		},
	}

	if *wait > 0 {
		if err := waitHealthy(httpClient, *addr, *wait); err != nil {
			fatal(err)
		}
	}

	reqs, err := buildWorkload(*traceIn, *kernels, *mode, *distinct, *execute, *seed)
	if err != nil {
		fatal(err)
	}

	// With -faults the traffic goes through an in-process faultnet proxy
	// whose scenario loops for the whole run; health checks and the final
	// metrics scrape keep using the direct address.
	target := *addr
	if *faults != "" {
		sc, err := faultnet.ParseScenario(*faults)
		if err != nil {
			fatal(err)
		}
		proxy := faultnet.New(*addr, *seed)
		paddr, err := proxy.Start("127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		defer proxy.Close()
		target = "http://" + paddr
		fmt.Printf("loadgen: faultnet proxy on %s, scenario %s (%v per pass)\n",
			paddr, sc.Name, sc.Total())
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			for ctx.Err() == nil {
				_ = proxy.Run(ctx, sc, func(i int, s faultnet.Step) {
					fmt.Printf("loadgen: fault step %d: %v for %v\n", i, s.Faults, s.Duration)
				})
			}
		}()
	}

	fmt.Printf("loadgen: %s, %d workers, batch %d, %s wire, %v against %s (%d distinct requests)\n",
		loopName(*rate), *concurrency, *batch, *wireFormat, *duration, target, len(reqs))

	var st *stats
	var rc *client.Client
	if *clusterSet != "" {
		cc, err := newClusterLoadClient(*clusterSet, *kernels, *noFallback, *seed)
		if err != nil {
			fatal(err)
		}
		defer cc.Close()
		st = runClient(cc, reqs, *concurrency, *rate, *batch, *duration)
		st.report(os.Stdout)
		reportCluster(cc, os.Stdout)
		if *scrape {
			scrapeMetrics(httpClient, *addr, os.Stdout)
		}
		if err := st.gateErr(*minThroughput); err != nil {
			fatal(err)
		}
		if err := st.hardErr(); err != nil {
			fatal(err)
		}
		return
	}
	if *useClient {
		rc, err = newResilientClient(target, *kernels, *noFallback, binary, stream, *streamAddr, *streamConns, *seed)
		if err != nil {
			fatal(err)
		}
		defer rc.Close()
		st = runClient(rc, reqs, *concurrency, *rate, *batch, *duration)
	} else if stream {
		st = runStream(target, *streamAddr, reqs, polybenchParams(*kernels),
			*concurrency, *rate, *batch, *duration, *streamConns)
	} else if binary {
		st = runWire(httpClient, target, reqs, polybenchParams(*kernels),
			*concurrency, *rate, *batch, *duration)
	} else {
		st = run(httpClient, target, reqs, *concurrency, *rate, *batch, *duration)
	}
	st.report(os.Stdout)
	if rc != nil {
		reportClient(rc, os.Stdout)
	}

	if *scrape {
		scrapeMetrics(httpClient, *addr, os.Stdout)
	}
	if err := st.gateErr(*minThroughput); err != nil {
		fatal(err)
	}
	if err := st.hardErr(); err != nil {
		fatal(err)
	}
}

func loopName(rate int) string {
	if rate > 0 {
		return fmt.Sprintf("open loop (%d req/s)", rate)
	}
	return "closed loop"
}

// ------------------------------------------------------------ workload --

// buildWorkload produces the ring of decision requests the generator
// cycles through.
func buildWorkload(traceIn, kernels, mode string, distinct int, execute bool, seed int64) ([]server.DecideRequest, error) {
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recs, err := trace.Read(bufio.NewReader(f))
		if err != nil {
			return nil, err
		}
		if len(recs) == 0 {
			return nil, fmt.Errorf("trace %s is empty", traceIn)
		}
		reqs := make([]server.DecideRequest, len(recs))
		for i, r := range recs {
			reqs[i] = server.DecideRequest{Region: r.Region, Bindings: r.Bindings, Execute: execute}
		}
		return reqs, nil
	}

	var m polybench.Mode
	switch mode {
	case "test":
		m = polybench.Test
	case "benchmark":
		m = polybench.Benchmark
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
	want := map[string]bool{}
	for _, name := range strings.Split(kernels, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	if distinct < 1 {
		distinct = 1
	}

	// Polybench-shaped synthesis: every suite kernel contributes its
	// canonical mode bindings plus progressively smaller variants, with
	// zipf-like weights (variant v appears distinct-v times) so most
	// traffic repeats hot binding sets.
	var reqs []server.DecideRequest
	for _, k := range polybench.Suite() {
		if len(want) > 0 && !want[k.Name] {
			continue
		}
		base := k.Bindings(m)
		for v := 0; v < distinct; v++ {
			b := map[string]int64{}
			for name, val := range base {
				scaled := val >> v
				if scaled < 8 {
					scaled = 8
				}
				b[name] = scaled
			}
			for rep := 0; rep < distinct-v; rep++ {
				reqs = append(reqs, server.DecideRequest{
					Region: k.Name, Bindings: b, Execute: execute})
			}
		}
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("no kernels selected")
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
	return reqs, nil
}

// ----------------------------------------------------------------- run --

type stats struct {
	ok atomic.Uint64 // HTTP 200 calls
	// shed counts 429 responses: deliberate load shedding by an
	// overloaded daemon doing its job, reported and gated separately
	// from hard failures.
	shed      atomic.Uint64
	transport atomic.Uint64 // transport failures (dial, reset, timeout)
	serverErr atomic.Uint64 // hard HTTP errors: 5xx and unexpected statuses
	decisions atomic.Uint64 // decision results inside 200 responses
	itemErrs  atomic.Uint64 // per-item errors inside batch responses
	dropped   atomic.Uint64 // open loop: dispatches the client queue refused

	// Client-mode accounting: verdict provenance and calls the resilient
	// client could not complete at all (its hard-failure class).
	remote    atomic.Uint64
	hedged    atomic.Uint64
	fallback  atomic.Uint64
	coalesced atomic.Uint64
	failed    atomic.Uint64

	// Correction-stage accounting over successful /v2 verdicts: how many
	// rankings came from a confident learned residual model versus the
	// analytical (EWMA-calibrated) path.
	learned    atomic.Uint64
	analytical atomic.Uint64

	// Per-transport accepted-decision tallies, so a stream run that
	// silently fell back to HTTP shows up in the gate line rather than
	// hiding inside one aggregate.
	tJSON   atomic.Uint64 // decisions answered over HTTP JSON
	tBinary atomic.Uint64 // decisions answered over HTTP binary frames
	tStream atomic.Uint64 // decisions answered over the stream transport
	tLocal  atomic.Uint64 // decisions answered by the in-process fallback

	mu        sync.Mutex
	latencies []int64 // ns per HTTP call
	elapsed   time.Duration
}

func (st *stats) observe(d time.Duration) {
	st.mu.Lock()
	st.latencies = append(st.latencies, int64(d))
	st.mu.Unlock()
}

func (st *stats) decisionsPerSec() float64 {
	if st.elapsed <= 0 {
		return 0
	}
	return float64(st.decisions.Load()) / st.elapsed.Seconds()
}

// gateErr enforces the -min-throughput floor against accepted traffic
// only: when the daemon sheds under deliberate overload the floor is
// scaled by the accepted fraction of calls, so an open-loop run that
// pushes past saturation is judged on what the daemon admitted, not on
// load it explicitly refused.
func (st *stats) gateErr(min float64) error {
	if min <= 0 {
		return nil
	}
	floor := min
	if calls := st.ok.Load() + st.shed.Load(); calls > 0 {
		floor = min * float64(st.ok.Load()) / float64(calls)
	}
	if got := st.decisionsPerSec(); got < floor {
		msg := fmt.Sprintf("throughput %.0f decisions/s below required %.0f (floor %.0f scaled by accepted fraction)",
			got, min, floor)
		if tb := st.transportBreakdown(); tb != "" {
			msg += " [" + tb + "]"
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// transportBreakdown renders the accepted-decision split per transport,
// so a stream run that leaked onto HTTP, or a -faults run that absorbed
// verdicts locally, is visible in the throughput line and gate message
// rather than hiding inside one aggregate.
func (st *stats) transportBreakdown() string {
	parts := []struct {
		name string
		n    uint64
	}{
		{"http-json", st.tJSON.Load()},
		{"http-binary", st.tBinary.Load()},
		{"stream", st.tStream.Load()},
		{"local", st.tLocal.Load()},
	}
	var b strings.Builder
	for _, p := range parts {
		if p.n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %d", p.name, p.n)
	}
	return b.String()
}

// hardErr reports transport and 5xx failures — the errors that must fail
// the run. Sheds are excluded: they are the daemon's documented
// backpressure, not a malfunction. In client mode the bar is higher:
// the resilient client absorbs transport faults, so any call it could
// not complete with a verdict is a hard failure — 100% completion is
// the contract a -faults run is graded on.
func (st *stats) hardErr() error {
	t, s, f := st.transport.Load(), st.serverErr.Load(), st.failed.Load()
	if t+s+f == 0 {
		return nil
	}
	return fmt.Errorf("%d transport errors, %d server errors, %d incomplete client calls", t, s, f)
}

func run(client *http.Client, addr string, reqs []server.DecideRequest,
	concurrency, rate, batch int, duration time.Duration) *stats {
	st := &stats{}
	var next atomic.Uint64

	fire := func() {
		i := int(next.Add(1)-1) % len(reqs)
		body, n := encodeCall(reqs, i, batch)
		start := time.Now()
		resp, err := client.Post(addr+"/v1/decide", "application/json", bytes.NewReader(body))
		if err != nil {
			st.transport.Add(1)
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		st.observe(time.Since(start))
		switch resp.StatusCode {
		case http.StatusOK:
			st.ok.Add(1)
			good := uint64(n - countItemErrors(raw, n, st))
			st.decisions.Add(good)
			st.tJSON.Add(good)
		case http.StatusTooManyRequests:
			st.shed.Add(1)
		default:
			st.serverErr.Add(1)
		}
	}

	drive(st, concurrency, rate, duration, fire)
	return st
}

// runWire is run's counterpart over the binary frame format: the same
// loop models against POST /v2/decide with frame bodies — slot-form
// binding vectors whenever the region's parameter set is known, named
// bindings otherwise.
func runWire(client *http.Client, addr string, reqs []server.DecideRequest,
	params map[string][]string, concurrency, rate, batch int, duration time.Duration) *stats {
	st := &stats{}
	var next atomic.Uint64

	fire := func() {
		i := int(next.Add(1)-1) % len(reqs)
		body := encodeWireCall(reqs, i, batch, params)
		start := time.Now()
		resp, err := client.Post(addr+"/v2/decide", wire.ContentType, bytes.NewReader(body))
		if err != nil {
			st.transport.Add(1)
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		st.observe(time.Since(start))
		switch resp.StatusCode {
		case http.StatusOK:
			st.ok.Add(1)
			good := uint64(countWireDecisions(raw, st))
			st.decisions.Add(good)
			st.tBinary.Add(good)
		case http.StatusTooManyRequests:
			st.shed.Add(1)
		default:
			st.serverErr.Add(1)
		}
	}

	drive(st, concurrency, rate, duration, fire)
	return st
}

// loadStreamSlot is one persistent stream connection in runStream's
// pool, redialed in place when it dies or is drained by a Goaway.
type loadStreamSlot struct {
	mu   sync.Mutex
	conn *client.StreamConn
}

func (s *loadStreamSlot) get(dial func() (*client.StreamConn, error)) (*client.StreamConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil && s.conn.Usable() {
		return s.conn, nil
	}
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	c, err := dial()
	if err != nil {
		return nil, err
	}
	s.conn = c
	return c, nil
}

// runStream is run's counterpart over the persistent stream transport:
// a small shared pool of long-lived connections carries pipelined
// decide frames, each call correlating its reply by stream ID. Batch
// calls pipeline their decisions concurrently over one connection. A
// dead connection costs the calls riding it (transport errors) and is
// redialed in place by the next call landing on the slot.
func runStream(addr, streamAddr string, reqs []server.DecideRequest,
	params map[string][]string, concurrency, rate, batch int,
	duration time.Duration, conns int) *stats {
	st := &stats{}
	var next atomic.Uint64
	if conns <= 0 {
		conns = 2
	}
	pool := make([]*loadStreamSlot, conns)
	for i := range pool {
		pool[i] = &loadStreamSlot{}
	}
	defer func() {
		for _, s := range pool {
			s.mu.Lock()
			if s.conn != nil {
				s.conn.Close()
			}
			s.mu.Unlock()
		}
	}()
	dial := func() (*client.StreamConn, error) {
		return client.DialStream(client.StreamDialConfig{
			Addr: streamAddr, URL: addr, DialTimeout: 2 * time.Second,
		})
	}
	ctx := context.Background()

	// tally classifies one stream response: accepted decision, credit /
	// admission shed, or hard server error.
	tally := func(resp *wire.Response) {
		switch {
		case resp.Err == nil:
			st.decisions.Add(1)
			st.tStream.Add(1)
		case resp.Err.Code == server.ErrCodeQueueFull:
			st.shed.Add(1)
		default:
			st.serverErr.Add(1)
		}
	}

	fire := func() {
		n := next.Add(1) - 1
		i := int(n) % len(reqs)
		sc, err := pool[int(n)%conns].get(dial)
		if err != nil {
			st.transport.Add(1)
			return
		}
		start := time.Now()
		if batch <= 1 {
			wr := toWireRequest(reqs[i], params)
			resp, err := sc.Decide(ctx, &wr)
			st.observe(time.Since(start))
			if err != nil {
				st.transport.Add(1)
				return
			}
			st.ok.Add(1)
			tally(resp)
			return
		}
		// Pipelined batch: all decisions in flight on one connection at
		// once, completing out of order.
		var wg sync.WaitGroup
		var deaths atomic.Uint64
		for j := 0; j < batch; j++ {
			wr := toWireRequest(reqs[(i+j)%len(reqs)], params)
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := sc.Decide(ctx, &wr)
				if err != nil {
					deaths.Add(1)
					return
				}
				tally(resp)
			}()
		}
		wg.Wait()
		st.observe(time.Since(start))
		if deaths.Load() > 0 {
			st.transport.Add(1)
			return
		}
		st.ok.Add(1)
	}

	drive(st, concurrency, rate, duration, fire)
	return st
}

// polybenchParams maps each (selected) suite kernel to its sorted
// parameter names — what the slot wire form needs to agree with the
// daemon on a region's binding layout.
func polybenchParams(kernels string) map[string][]string {
	want := kernelSubset(kernels)
	params := map[string][]string{}
	for _, k := range polybench.Suite() {
		if len(want) > 0 && !want[k.Name] {
			continue
		}
		b := k.Bindings(polybench.Test)
		names := make([]string, 0, len(b))
		for name := range b {
			names = append(names, name)
		}
		sort.Strings(names)
		params[k.Name] = names
	}
	return params
}

// kernelSubset parses the -kernels flag (empty = whole suite).
func kernelSubset(kernels string) map[string]bool {
	want := map[string]bool{}
	for _, name := range strings.Split(kernels, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	return want
}

// encodeWireCall is encodeCall in frames: one request frame for batch 1,
// a batch frame above.
func encodeWireCall(reqs []server.DecideRequest, i, batch int, params map[string][]string) []byte {
	if batch <= 1 {
		wr := toWireRequest(reqs[i], params)
		return wire.AppendRequest(nil, &wr)
	}
	window := make([]wire.Request, batch)
	for j := 0; j < batch; j++ {
		window[j] = toWireRequest(reqs[(i+j)%len(reqs)], params)
	}
	return wire.AppendBatchRequest(nil, window)
}

// toWireRequest picks the slot form when the kernel's parameter set is
// known and matches the bindings exactly, falling back to named form.
func toWireRequest(req server.DecideRequest, params map[string][]string) wire.Request {
	names := make([]string, 0, len(req.Bindings))
	for name := range req.Bindings {
		names = append(names, name)
	}
	sort.Strings(names)
	values := make([]int64, len(names))
	for i, name := range names {
		values[i] = req.Bindings[name]
	}
	wr := wire.Request{Region: req.Region, Execute: req.Execute, Values: values}
	if p, ok := params[req.Region]; ok && slices.Equal(p, names) {
		wr.SlotForm = true
		wr.KeyHash = attrdb.BindingsHash(symbolic.Bindings(req.Bindings))
		return wr
	}
	wr.Names = names
	return wr
}

// countWireDecisions tallies successful decisions (and item errors) in
// a 200 frame body.
func countWireDecisions(raw []byte, st *stats) int {
	frames, err := wire.DecodeAll(raw)
	if err != nil {
		return 0
	}
	decisions := 0
	count := func(r *wire.Response) {
		if r.Err != nil {
			st.itemErrs.Add(1)
			return
		}
		decisions++
	}
	for _, fr := range frames {
		switch fr.Type {
		case wire.TypeResponse:
			count(fr.Resp)
		case wire.TypeBatchResponse:
			for j := range fr.Resps {
				count(&fr.Resps[j])
			}
		}
	}
	return decisions
}

// decider is the request surface runClient drives: both the
// single-daemon resilient client and the cluster client satisfy it.
type decider interface {
	Decide(context.Context, server.DecideRequest) (*client.Verdict, error)
	DecideBatch(context.Context, []server.DecideRequest) ([]client.Verdict, error)
}

// runClient is run's counterpart over the resilient client: same loop
// models and ring, but every call goes through retries, hedging, the
// breaker and (when configured) the in-process fallback, and every
// verdict's provenance is tallied.
func runClient(c decider, reqs []server.DecideRequest,
	concurrency, rate, batch int, duration time.Duration) *stats {
	st := &stats{}
	var next atomic.Uint64
	ctx := context.Background()

	note := func(v client.Verdict) {
		switch v.Provenance {
		case client.ProvenanceHedged:
			st.hedged.Add(1)
		case client.ProvenanceFallback:
			st.fallback.Add(1)
		default:
			st.remote.Add(1)
		}
		if v.Coalesced {
			st.coalesced.Add(1)
		}
		if v.Response.Error != nil {
			st.itemErrs.Add(1)
		} else {
			st.decisions.Add(1)
			switch v.Transport {
			case client.TransportStream:
				st.tStream.Add(1)
			case client.TransportHTTPBinary:
				st.tBinary.Add(1)
			case client.TransportLocal:
				st.tLocal.Add(1)
			default:
				st.tJSON.Add(1)
			}
			switch v.Response.Provenance {
			case offload.ProvenanceLearned:
				st.learned.Add(1)
			case offload.ProvenanceAnalytical:
				st.analytical.Add(1)
			}
		}
	}

	fire := func() {
		i := int(next.Add(1)-1) % len(reqs)
		start := time.Now()
		if batch <= 1 {
			v, err := c.Decide(ctx, reqs[i])
			st.observe(time.Since(start))
			if err != nil {
				st.failed.Add(1)
				return
			}
			st.ok.Add(1)
			note(*v)
			return
		}
		window := make([]server.DecideRequest, batch)
		for j := 0; j < batch; j++ {
			window[j] = reqs[(i+j)%len(reqs)]
		}
		vs, err := c.DecideBatch(ctx, window)
		st.observe(time.Since(start))
		if err != nil {
			st.failed.Add(1)
			return
		}
		st.ok.Add(1)
		for _, v := range vs {
			note(v)
		}
	}

	drive(st, concurrency, rate, duration, fire)
	return st
}

// drive runs the shared load loop — closed (workers back-to-back) or
// open (dispatch on schedule into a bounded queue) — until the deadline.
func drive(st *stats, concurrency, rate int, duration time.Duration, fire func()) {
	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	if rate <= 0 {
		// Closed loop: workers back-to-back until the deadline.
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					fire()
				}
			}()
		}
		wg.Wait()
	} else {
		// Open loop: dispatch on schedule into a bounded client queue.
		jobs := make(chan struct{}, concurrency*1024)
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range jobs {
					fire()
				}
			}()
		}
		interval := time.Second / time.Duration(rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		for time.Now().Before(deadline) {
			<-ticker.C
			select {
			case jobs <- struct{}{}:
			default:
				st.dropped.Add(1)
			}
		}
		ticker.Stop()
		close(jobs)
		wg.Wait()
	}
	st.elapsed = time.Since(start)
}

// newResilientClient builds the production client for -client mode. The
// fallback runtime mirrors hybridseld's defaults (same platform, thread
// count and kernel subset), so degraded verdicts match what the daemon
// would have answered.
func newResilientClient(baseURL, kernels string, noFallback, binary, stream bool,
	streamAddr string, streamConns int, seed int64) (*client.Client, error) {
	cfg := client.Config{BaseURL: baseURL, Seed: seed}
	if binary {
		params := polybenchParams(kernels)
		cfg.Binary = true
		cfg.RegionParams = func(region string) []string { return params[region] }
	}
	if stream {
		params := polybenchParams(kernels)
		cfg.Stream = true
		cfg.StreamAddr = streamAddr
		cfg.StreamConns = streamConns
		cfg.RegionParams = func(region string) []string { return params[region] }
	}
	if !noFallback {
		rt := offload.NewRuntime(offload.Config{
			Platform: machine.PlatformP9V100(),
			Threads:  160,
			CPUSim:   sim.CPUConfig{SampleItems: 8, MaxLoopSample: 32},
			GPUSim:   sim.GPUConfig{SampleWarps: 2, MaxLoopSample: 32, MaxRepSample: 1},
		})
		want := kernelSubset(kernels)
		for _, k := range polybench.Suite() {
			if len(want) > 0 && !want[k.Name] {
				continue
			}
			if _, err := rt.Register(k.IR); err != nil {
				return nil, err
			}
		}
		cfg.Fallback = rt
	}
	return client.New(cfg)
}

// newClusterLoadClient builds the cluster client for -cluster mode from
// the id=base-url member list.
func newClusterLoadClient(members, kernels string, noFallback bool, seed int64) (*client.ClusterClient, error) {
	ccfg := client.ClusterConfig{Replica: client.Config{Seed: seed}}
	for _, part := range strings.Split(members, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-cluster entry %q: want id=base-url", part)
		}
		ccfg.Members = append(ccfg.Members, client.ClusterMember{ID: id, BaseURL: url})
	}
	if !noFallback {
		rt := offload.NewRuntime(offload.Config{
			Platform: machine.PlatformP9V100(),
			Threads:  160,
			CPUSim:   sim.CPUConfig{SampleItems: 8, MaxLoopSample: 32},
			GPUSim:   sim.GPUConfig{SampleWarps: 2, MaxLoopSample: 32, MaxRepSample: 1},
		})
		want := kernelSubset(kernels)
		for _, k := range polybench.Suite() {
			if len(want) > 0 && !want[k.Name] {
				continue
			}
			if _, err := rt.Register(k.IR); err != nil {
				return nil, err
			}
		}
		ccfg.Fallback = rt
	}
	return client.NewCluster(ccfg)
}

// reportCluster prints the cluster-layer counters after a -cluster run:
// routing outcomes first, then each replica's own client snapshot.
func reportCluster(cc *client.ClusterClient, w io.Writer) {
	m := cc.Metrics()
	fmt.Fprintf(w, "cluster      %d requests, %d failovers, %d cross hedges (%d won), %d fallbacks, %d demoted routes\n",
		m.Requests, m.Failovers, m.CrossHedges, m.CrossHedgeWins, m.Fallbacks, m.Demoted)
	ids := make([]string, 0, len(m.Replicas))
	for id := range m.Replicas {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rm := m.Replicas[id]
		fmt.Fprintf(w, "  %-10s %d retries, %d fallbacks, breaker %s (opened %d)\n",
			id, rm.Retries, rm.Fallbacks, rm.BreakerState, rm.BreakerOpened)
	}
}

// reportClient prints the client-side resilience counters after a
// -client run, in the same spirit as the daemon scrape.
func reportClient(c *client.Client, w io.Writer) {
	m := c.Metrics()
	fmt.Fprintf(w, "client       %d retries, %d hedges (%d won), %d fallbacks, %d coalesced\n",
		m.Retries, m.Hedges, m.HedgeWins, m.Fallbacks, m.Coalesced)
	fmt.Fprintf(w, "breaker      %s (opened %d times), %d retry-after waits honored\n",
		m.BreakerState, m.BreakerOpened, m.RetryAfterHonored)
	if m.StreamCalls+m.StreamFallbacks+m.StreamReconnects+m.StreamDowngrades > 0 {
		fmt.Fprintf(w, "stream       %d calls, %d fallbacks to HTTP, %d reconnects, %d downgrades\n",
			m.StreamCalls, m.StreamFallbacks, m.StreamReconnects, m.StreamDowngrades)
	}
}

// encodeCall builds the request body starting at ring index i: the
// single-object shape for batch 1, the {"requests": [...]} shape above.
// It returns the body and the number of decisions requested.
func encodeCall(reqs []server.DecideRequest, i, batch int) ([]byte, int) {
	if batch <= 1 {
		b, _ := json.Marshal(reqs[i])
		return b, 1
	}
	window := make([]server.DecideRequest, batch)
	for j := 0; j < batch; j++ {
		window[j] = reqs[(i+j)%len(reqs)]
	}
	b, _ := json.Marshal(struct {
		Requests []server.DecideRequest `json:"requests"`
	}{window})
	return b, batch
}

// countItemErrors inspects a 200 response for per-item batch errors.
func countItemErrors(raw []byte, n int, st *stats) int {
	if n <= 1 {
		return 0
	}
	var br server.BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		return 0
	}
	errs := 0
	for _, r := range br.Results {
		if r.Error != "" {
			errs++
		}
	}
	st.itemErrs.Add(uint64(errs))
	return errs
}

// -------------------------------------------------------------- report --

func (st *stats) report(w io.Writer) {
	st.mu.Lock()
	lat := st.latencies
	st.mu.Unlock()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(q float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		return time.Duration(lat[int(q*float64(len(lat)-1))])
	}
	fmt.Fprintf(w, "calls        %d ok, %d shed (429), %d transport errors, %d server errors",
		st.ok.Load(), st.shed.Load(), st.transport.Load(), st.serverErr.Load())
	if d := st.dropped.Load(); d > 0 {
		fmt.Fprintf(w, ", %d dropped client-side", d)
	}
	if f := st.failed.Load(); f > 0 {
		fmt.Fprintf(w, ", %d incomplete", f)
	}
	fmt.Fprintln(w)
	if r, h, fb := st.remote.Load(), st.hedged.Load(), st.fallback.Load(); r+h+fb > 0 {
		fmt.Fprintf(w, "provenance   %d remote, %d hedged, %d fallback, %d coalesced\n",
			r, h, fb, st.coalesced.Load())
	}
	fmt.Fprintf(w, "decisions    %d (%.0f/s)", st.decisions.Load(), st.decisionsPerSec())
	if tb := st.transportBreakdown(); tb != "" {
		fmt.Fprintf(w, " [%s]", tb)
	}
	if e := st.itemErrs.Load(); e > 0 {
		fmt.Fprintf(w, ", %d item errors", e)
	}
	if l, a := st.learned.Load(), st.analytical.Load(); l+a > 0 {
		fmt.Fprintf(w, ", %d learned / %d analytical", l, a)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "call latency p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
}

// scrapeMetrics prints the daemon-side counters that matter for a load
// run: decision volume, cache efficiency, shedding.
func scrapeMetrics(client *http.Client, addr string, w io.Writer) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		fmt.Fprintf(w, "metrics scrape failed: %v\n", err)
		return
	}
	defer resp.Body.Close()
	fmt.Fprintln(w, "daemon:")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, prefix := range []string{
			"hybridsel_decides_total",
			"hybridsel_launches_total",
			"hybridsel_model_evaluations_total",
			"hybridsel_decision_cache_hits_total",
			"hybridsel_decision_cache_misses_total",
			"hybridseld_shed_total",
		} {
			if strings.HasPrefix(line, prefix) {
				fmt.Fprintf(w, "  %s\n", line)
			}
		}
	}
}

func waitHealthy(client *http.Client, addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon not healthy after %v: %w", timeout, err)
			}
			return fmt.Errorf("daemon not healthy after %v", timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
