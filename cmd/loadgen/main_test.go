package main

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hybridsel/hybridsel/internal/faultnet"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/server"
	"github.com/hybridsel/hybridsel/internal/sim"
)

// TestRunClassifiesResponses drives the generator against a stub daemon
// that cycles 200 / 429 / 500: sheds and hard server errors must land in
// separate counters, and only 200 responses count decisions.
func TestRunClassifiesResponses(t *testing.T) {
	var calls atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/decide" {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		switch calls.Add(1) % 3 {
		case 1:
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"region":"gemm","target":"gpu"}`))
		case 2:
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer ts.Close()

	reqs := []server.DecideRequest{{Region: "gemm", Bindings: map[string]int64{"n": 64}}}
	st := run(ts.Client(), ts.URL, reqs, 1, 0, 1, 150*time.Millisecond)

	total := calls.Load()
	if total == 0 {
		t.Fatal("stub saw no traffic")
	}
	if got := st.ok.Load() + st.shed.Load() + st.serverErr.Load(); got != total {
		t.Fatalf("classified %d calls, stub served %d", got, total)
	}
	if st.ok.Load() == 0 || st.shed.Load() == 0 || st.serverErr.Load() == 0 {
		t.Fatalf("missing a class: ok=%d shed=%d serverErr=%d",
			st.ok.Load(), st.shed.Load(), st.serverErr.Load())
	}
	if st.transport.Load() != 0 {
		t.Fatalf("transport errors against a live stub: %d", st.transport.Load())
	}
	if st.decisions.Load() != st.ok.Load() {
		t.Fatalf("decisions %d != ok calls %d (batch 1)",
			st.decisions.Load(), st.ok.Load())
	}
	if err := st.hardErr(); err == nil {
		t.Fatal("5xx responses did not fail hardErr")
	}
}

// TestTransportErrorsCounted points the generator at a closed port.
func TestTransportErrorsCounted(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // nothing listens here any more

	reqs := []server.DecideRequest{{Region: "gemm", Bindings: map[string]int64{"n": 64}}}
	st := run(http.DefaultClient, url, reqs, 1, 0, 1, 50*time.Millisecond)
	if st.transport.Load() == 0 {
		t.Fatal("no transport errors against a dead endpoint")
	}
	if st.serverErr.Load() != 0 || st.shed.Load() != 0 {
		t.Fatalf("dead endpoint misclassified: serverErr=%d shed=%d",
			st.serverErr.Load(), st.shed.Load())
	}
	if err := st.hardErr(); err == nil {
		t.Fatal("transport errors did not fail hardErr")
	}
}

// TestClientModeCompletesUnderFaults is the acceptance run in miniature:
// the resilient client (retries + fallback) drives a stub daemon through
// a fault-injection proxy holding the faults30 regime (≈30% mixed
// faults), and every single call must complete with a verdict.
func TestClientModeCompletesUnderFaults(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"region":"mvt1","target":"gpu","predCpuSeconds":1,"predGpuSeconds":0.5}`))
	}))
	defer ts.Close()

	proxy := faultnet.New(ts.URL, 42)
	paddr, err := proxy.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	sc, err := faultnet.ParseScenario("faults30")
	if err != nil {
		t.Fatal(err)
	}
	proxy.SetFaults(sc.Steps[0].Faults)

	c, err := newResilientClient("http://"+paddr, "mvt1", false, false, false, "", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	reqs, err := buildWorkload("", "mvt1", "test", 2, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := runClient(c, reqs, 4, 0, 1, 300*time.Millisecond)

	if st.ok.Load() == 0 {
		t.Fatal("no calls completed")
	}
	if f := st.failed.Load(); f != 0 {
		t.Fatalf("%d of %d calls did not complete under the 30%% fault regime",
			f, f+st.ok.Load())
	}
	if err := st.hardErr(); err != nil {
		t.Fatalf("hardErr under faults: %v", err)
	}
	if r, h, fb := st.remote.Load(), st.hedged.Load(), st.fallback.Load(); r+h+fb != st.ok.Load() {
		t.Fatalf("provenance %d+%d+%d does not cover %d completed calls",
			r, h, fb, st.ok.Load())
	}
}

// TestGateScalesToAcceptedTraffic checks the -min-throughput floor is
// judged against what the daemon admitted, not against shed load.
func TestGateScalesToAcceptedTraffic(t *testing.T) {
	st := &stats{elapsed: time.Second}
	st.ok.Store(50)
	st.shed.Store(50) // half the calls deliberately shed
	st.decisions.Store(50)

	// 50 decisions/s meets a floor of 100 scaled by the 50% accepted
	// fraction...
	if err := st.gateErr(100); err != nil {
		t.Fatalf("scaled gate failed: %v", err)
	}
	// ...but not a floor of 200 (scaled to 100).
	if err := st.gateErr(200); err == nil {
		t.Fatal("gate passed below the scaled floor")
	}
	// Without sheds the floor applies unscaled.
	st.shed.Store(0)
	if err := st.gateErr(51); err == nil {
		t.Fatal("gate passed below the unscaled floor")
	}
	if err := st.gateErr(50); err != nil {
		t.Fatalf("gate failed at the floor: %v", err)
	}
	// Sheds alone are not hard errors.
	st.shed.Store(10)
	if err := st.hardErr(); err != nil {
		t.Fatalf("sheds failed hardErr: %v", err)
	}
	// A run that connected to nothing has no accepted calls: the floor
	// stays unscaled and fails loudly rather than vacuously passing.
	empty := &stats{elapsed: time.Second}
	if err := empty.gateErr(10); err == nil {
		t.Fatal("empty run passed the gate")
	}
}

// TestRunWireAgainstRealDaemon drives the binary frame path (-wire
// binary, plain mode) against a live server: every call must decode as
// frames and count its decisions, with zero transport or server errors.
func TestRunWireAgainstRealDaemon(t *testing.T) {
	rt := offload.NewRuntime(offload.Config{
		Platform: machine.PlatformP9V100(),
		CPUSim:   sim.CPUConfig{SampleItems: 8, MaxLoopSample: 32},
		GPUSim:   sim.GPUConfig{SampleWarps: 2, MaxLoopSample: 32, MaxRepSample: 1},
	})
	k, err := polybench.Get("mvt1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Register(k.IR); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Runtime: rt,
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqs, err := buildWorkload("", "mvt1", "test", 2, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 8} {
		st := runWire(ts.Client(), ts.URL, reqs, polybenchParams("mvt1"),
			2, 0, batch, 100*time.Millisecond)
		if st.ok.Load() == 0 {
			t.Fatalf("batch %d: no wire calls completed", batch)
		}
		if st.transport.Load() != 0 || st.serverErr.Load() != 0 || st.itemErrs.Load() != 0 {
			t.Fatalf("batch %d: errors over the wire path: transport=%d server=%d item=%d",
				batch, st.transport.Load(), st.serverErr.Load(), st.itemErrs.Load())
		}
		if st.decisions.Load() != st.ok.Load()*uint64(batch) {
			t.Fatalf("batch %d: %d decisions from %d ok calls",
				batch, st.decisions.Load(), st.ok.Load())
		}
		if err := st.hardErr(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
}
