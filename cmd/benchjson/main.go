// Command benchjson turns `go test -bench -benchmem` output into the
// repo's benchmark ledgers (BENCH_decide.json for the decision hot
// path, BENCH_serve.json for end-to-end /v2/decide serving) and gates
// regressions against a committed ledger.
//
// Usage:
//
//	go test -run '^$' -bench 'Predict|Decide' -benchmem . | benchjson -out BENCH_decide.json
//	go test -run '^$' -bench 'Serve' -benchmem . | benchjson -out BENCH_serve.json -min-wire-speedup 2 -min-stream-speedup 3
//	... | benchjson -gate BENCH_decide.json          # fail on regression, write nothing
//
// The ledger records per-benchmark ns/op, B/op and allocs/op plus two
// derived, machine-independent headline ratios: how much faster and how
// much leaner the compiled decision path is than the interpreted one on
// the same machine in the same run. Gating compares only what is stable
// across machines — allocation counts (deterministic) and the in-run
// ratios — never raw ns/op, so the check passes on a slow CI box and
// still catches a real regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one `go test -bench` result line. The serve benchmarks
// report three custom metrics alongside the standard triple:
// decisions/s (items decided per second, batch-aware) and per-request
// p50/p99 latency in nanoseconds.
type Benchmark struct {
	Name            string  `json:"name"`
	NsPerOp         float64 `json:"nsPerOp"`
	BytesPerOp      float64 `json:"bytesPerOp"`
	AllocsPerOp     float64 `json:"allocsPerOp"`
	DecisionsPerSec float64 `json:"decisionsPerSec,omitempty"`
	P50Ns           float64 `json:"p50Ns,omitempty"`
	P99Ns           float64 `json:"p99Ns,omitempty"`
}

// Summary holds the derived headline numbers.
type Summary struct {
	// GeomeanNsPerOp is the geometric mean ns/op over every benchmark —
	// a single machine-local trend number for eyeballing a diff.
	GeomeanNsPerOp float64 `json:"geomeanNsPerOp"`
	// UncachedSpeedup = interpreted ns/op ÷ compiled ns/op for one
	// uncached model-pair evaluation (same machine, same run).
	UncachedSpeedup float64 `json:"uncachedSpeedup"`
	// UncachedAllocsRatio = interpreted allocs/op ÷ compiled allocs/op.
	UncachedAllocsRatio float64 `json:"uncachedAllocsRatio"`
	// CachedVsUncachedNs = uncached compiled ns/op ÷ cached ns/op: what
	// the decision cache still buys over the compiled models.
	CachedVsUncachedNs float64 `json:"cachedVsUncachedNs"`

	// Serving headline ratios (BENCH_serve.json only): binary-frame
	// decisions/s ÷ JSON decisions/s on the same machine in the same
	// run, for single-request and 64-item-batch calls.
	BinaryVsJSONSingle  float64 `json:"binaryVsJsonSingle,omitempty"`
	BinaryVsJSONBatched float64 `json:"binaryVsJsonBatched,omitempty"`
	// StreamVsJSONSingle = persistent-stream single-in-flight
	// decisions/s ÷ JSON single decisions/s — what killing per-request
	// HTTP overhead buys the decide path on this machine in this run.
	StreamVsJSONSingle float64 `json:"streamVsJsonSingle,omitempty"`
}

// Ledger is the BENCH_decide.json schema.
type Ledger struct {
	Note       string      `json:"note"`
	Go         string      `json:"go,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Summary    Summary     `json:"summary"`
}

const (
	uncachedName    = "BenchmarkPredictUncached"
	interpretedName = "BenchmarkPredictUncachedInterpreted"
	cachedName      = "BenchmarkPredictCached"

	serveJSONSingle   = "BenchmarkServeJSONSingle"
	serveBinarySingle = "BenchmarkServeBinarySingle"
	serveJSONBatch    = "BenchmarkServeJSONBatch64"
	serveBinaryBatch  = "BenchmarkServeBinaryBatch64"
	serveStreamSingle = "BenchmarkServeStreamSingle"
)

func main() {
	out := flag.String("out", "", "write the ledger to this file ('-' = stdout)")
	gate := flag.String("gate", "", "compare against this committed ledger and fail on regression")
	minSpeedup := flag.Float64("min-speedup", 5,
		"minimum compiled-vs-interpreted uncached speedup (the acceptance floor)")
	minAllocsRatio := flag.Float64("min-allocs-ratio", 4,
		"minimum compiled-vs-interpreted allocs/op ratio (the acceptance floor)")
	tolerance := flag.Float64("tolerance", 0.20,
		"allowed relative regression vs the committed ledger")
	minWireSpeedup := flag.Float64("min-wire-speedup", 0,
		"minimum binary-vs-JSON batched decisions/s ratio (0 = no floor; serve ledger only)")
	minStreamSpeedup := flag.Float64("min-stream-speedup", 0,
		"minimum stream-vs-JSON single decisions/s ratio (0 = no floor; serve ledger only)")
	flag.Parse()

	ledger, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(ledger.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	if ledger.Summary.UncachedSpeedup > 0 && ledger.Summary.UncachedSpeedup < *minSpeedup {
		fatal(fmt.Errorf("uncached speedup %.1fx below the %.1fx floor",
			ledger.Summary.UncachedSpeedup, *minSpeedup))
	}
	if ledger.Summary.UncachedAllocsRatio > 0 && ledger.Summary.UncachedAllocsRatio < *minAllocsRatio {
		fatal(fmt.Errorf("uncached allocs ratio %.1fx below the %.1fx floor",
			ledger.Summary.UncachedAllocsRatio, *minAllocsRatio))
	}
	if *minWireSpeedup > 0 {
		if ledger.Summary.BinaryVsJSONBatched == 0 {
			fatal(fmt.Errorf("-min-wire-speedup set but the run holds no serve benchmarks"))
		}
		if ledger.Summary.BinaryVsJSONBatched < *minWireSpeedup {
			fatal(fmt.Errorf("binary-vs-JSON batched ratio %.2fx below the %.2fx floor",
				ledger.Summary.BinaryVsJSONBatched, *minWireSpeedup))
		}
	}
	if *minStreamSpeedup > 0 {
		if ledger.Summary.StreamVsJSONSingle == 0 {
			fatal(fmt.Errorf("-min-stream-speedup set but the run holds no stream serve benchmarks"))
		}
		if ledger.Summary.StreamVsJSONSingle < *minStreamSpeedup {
			fatal(fmt.Errorf("stream-vs-JSON single ratio %.2fx below the %.2fx floor",
				ledger.Summary.StreamVsJSONSingle, *minStreamSpeedup))
		}
	}

	if *gate != "" {
		old, err := readLedger(*gate)
		if err != nil {
			fatal(fmt.Errorf("gate ledger: %w", err))
		}
		if err := compare(old, ledger, *tolerance); err != nil {
			fatal(err)
		}
		if ledger.Summary.BinaryVsJSONBatched > 0 {
			line := fmt.Sprintf("benchjson: no regression vs %s (binary/json batched %.1fx",
				*gate, ledger.Summary.BinaryVsJSONBatched)
			if ledger.Summary.StreamVsJSONSingle > 0 {
				line += fmt.Sprintf(", stream/json single %.1fx", ledger.Summary.StreamVsJSONSingle)
			}
			fmt.Fprintln(os.Stderr, line+")")
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: no regression vs %s (speedup %.0fx, allocs ratio %.0fx)\n",
				*gate, ledger.Summary.UncachedSpeedup, ledger.Summary.UncachedAllocsRatio)
		}
	}

	if *out != "" {
		enc, err := json.MarshalIndent(ledger, "", "  ")
		if err != nil {
			fatal(err)
		}
		enc = append(enc, '\n')
		if *out == "-" {
			os.Stdout.Write(enc)
		} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
	}
}

// parse reads `go test -bench` output, keeping benchmark lines and the
// goos/cpu header lines.
func parse(f *os.File) (*Ledger, error) {
	l := &Ledger{Note: "generated by scripts/bench.sh; gated by scripts/check.sh (allocs and in-run ratios only)"}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			l.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:"):
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			l.Benchmarks = append(l.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	l.Summary = summarize(l.Benchmarks)
	return l, nil
}

// parseLine parses one result line:
//
//	BenchmarkPredictUncached-8   429296   761.5 ns/op   8 B/op   1 allocs/op
func parseLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	b := Benchmark{Name: f[0]}
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if _, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	for i := 1; i+1 < len(f); i++ {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "decisions/s":
			b.DecisionsPerSec = v
		case "p50-ns":
			b.P50Ns = v
		case "p99-ns":
			b.P99Ns = v
		}
	}
	if b.NsPerOp == 0 {
		return b, fmt.Errorf("unparseable benchmark line: %q", line)
	}
	return b, nil
}

func summarize(benchmarks []Benchmark) Summary {
	var s Summary
	byName := map[string]Benchmark{}
	logSum := 0.0
	for _, b := range benchmarks {
		byName[b.Name] = b
		logSum += math.Log(b.NsPerOp)
	}
	s.GeomeanNsPerOp = math.Exp(logSum / float64(len(benchmarks)))
	comp, okC := byName[uncachedName]
	interp, okI := byName[interpretedName]
	if okC && okI && comp.NsPerOp > 0 {
		s.UncachedSpeedup = interp.NsPerOp / comp.NsPerOp
		if comp.AllocsPerOp > 0 {
			s.UncachedAllocsRatio = interp.AllocsPerOp / comp.AllocsPerOp
		} else if interp.AllocsPerOp > 0 {
			s.UncachedAllocsRatio = interp.AllocsPerOp // compiled path allocation-free
		}
	}
	if cached, ok := byName[cachedName]; ok && okC && cached.NsPerOp > 0 {
		s.CachedVsUncachedNs = comp.NsPerOp / cached.NsPerOp
	}
	s.BinaryVsJSONSingle = serveRatio(byName, serveBinarySingle, serveJSONSingle)
	s.BinaryVsJSONBatched = serveRatio(byName, serveBinaryBatch, serveJSONBatch)
	s.StreamVsJSONSingle = serveRatio(byName, serveStreamSingle, serveJSONSingle)
	return s
}

// serveRatio divides two serve benchmarks' decisions/s (0 when either
// side is absent — the decide ledger has no serve benchmarks).
func serveRatio(byName map[string]Benchmark, binName, jsonName string) float64 {
	bin, okB := byName[binName]
	js, okJ := byName[jsonName]
	if !okB || !okJ || js.DecisionsPerSec <= 0 {
		return 0
	}
	return bin.DecisionsPerSec / js.DecisionsPerSec
}

func readLedger(path string) (*Ledger, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var l Ledger
	if err := json.Unmarshal(raw, &l); err != nil {
		return nil, err
	}
	if len(l.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: ledger holds no benchmarks", path)
	}
	return &l, nil
}

// compare fails on regressions that are meaningful across machines: an
// allocs/op increase on any shared benchmark, or a drop in the in-run
// speedup ratios, beyond tolerance.
func compare(old, cur *Ledger, tol float64) error {
	curBy := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	for _, ob := range old.Benchmarks {
		cb, ok := curBy[ob.Name]
		if !ok {
			return fmt.Errorf("benchmark %s present in ledger but not in this run", ob.Name)
		}
		if cb.AllocsPerOp > ob.AllocsPerOp*(1+tol)+0.5 {
			return fmt.Errorf("%s: allocs/op regressed %.1f -> %.1f (>%.0f%%)",
				ob.Name, ob.AllocsPerOp, cb.AllocsPerOp, tol*100)
		}
	}
	if old.Summary.UncachedSpeedup > 0 &&
		cur.Summary.UncachedSpeedup < old.Summary.UncachedSpeedup*(1-tol) {
		return fmt.Errorf("uncached speedup regressed %.1fx -> %.1fx (>%.0f%%)",
			old.Summary.UncachedSpeedup, cur.Summary.UncachedSpeedup, tol*100)
	}
	if old.Summary.UncachedAllocsRatio > 0 &&
		cur.Summary.UncachedAllocsRatio < old.Summary.UncachedAllocsRatio*(1-tol) {
		return fmt.Errorf("uncached allocs ratio regressed %.1fx -> %.1fx (>%.0f%%)",
			old.Summary.UncachedAllocsRatio, cur.Summary.UncachedAllocsRatio, tol*100)
	}
	if old.Summary.BinaryVsJSONBatched > 0 &&
		cur.Summary.BinaryVsJSONBatched < old.Summary.BinaryVsJSONBatched*(1-tol) {
		return fmt.Errorf("binary-vs-JSON batched ratio regressed %.2fx -> %.2fx (>%.0f%%)",
			old.Summary.BinaryVsJSONBatched, cur.Summary.BinaryVsJSONBatched, tol*100)
	}
	if old.Summary.StreamVsJSONSingle > 0 &&
		cur.Summary.StreamVsJSONSingle < old.Summary.StreamVsJSONSingle*(1-tol) {
		return fmt.Errorf("stream-vs-JSON single ratio regressed %.2fx -> %.2fx (>%.0f%%)",
			old.Summary.StreamVsJSONSingle, cur.Summary.StreamVsJSONSingle, tol*100)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
