// Command polybench runs the Polybench suite through the offloading
// runtime under a chosen policy, printing per-kernel decisions, model
// predictions, executed times and the end-of-run policy summary.
//
// Usage:
//
//	polybench -mode test -policy model-guided
//	polybench -mode benchmark -policy always-gpu -threads 160
//	polybench -mode test -policy oracle
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/stats"
)

func main() {
	mode := flag.String("mode", "test", "dataset mode: test|benchmark")
	policy := flag.String("policy", "model-guided",
		"policy: model-guided|always-gpu|always-cpu|oracle|split")
	threads := flag.Int("threads", 160, "host thread count")
	platform := flag.String("platform", "p9v100", "platform: p9v100|p8k80")
	flag.Parse()

	var m polybench.Mode
	switch *mode {
	case "test":
		m = polybench.Test
	case "benchmark":
		m = polybench.Benchmark
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	p, err := offload.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	var plat machine.Platform
	switch *platform {
	case "p9v100":
		plat = machine.PlatformP9V100()
	case "p8k80":
		plat = machine.PlatformP8K80()
	default:
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}

	rt := offload.NewRuntime(offload.Config{
		Platform: plat, Threads: *threads, Policy: p,
	})
	for _, k := range polybench.Suite() {
		if _, err := rt.Register(k.IR); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("Polybench OpenMP suite — %s mode, %s policy, %s, %d host threads\n\n",
		m, p.Name(), plat.Name, *threads)
	t := stats.NewTable("", "kernel", "target", "executed",
		"pred cpu", "pred gpu", "decision time")
	var total float64
	var overhead time.Duration
	start := time.Now()
	for _, k := range polybench.Suite() {
		out, err := rt.Launch(k.Name, k.Bindings(m))
		if err != nil {
			fatal(err)
		}
		total += out.ActualSeconds
		overhead += out.DecisionOverhead
		t.AddRow(k.Name, out.Target.String(),
			fmtSec(out.ActualSeconds),
			fmtSec(out.PredCPUSeconds), fmtSec(out.PredGPUSeconds),
			out.DecisionOverhead.Round(time.Microsecond).String())
	}
	fmt.Println(t.String())
	fmt.Printf("suite executed (simulated) time: %s\n", fmtSec(total))
	fmt.Printf("total selector overhead: %v (wall clock, %d launches)\n",
		overhead.Round(time.Microsecond), len(polybench.Suite()))
	fmt.Printf("driver wall time: %v\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Print(rt.Metrics())
}

func fmtSec(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fus", s*1e6)
	}
}

// fatal exits non-zero with a clean, actionable message; the runtime's
// sentinel errors get targeted hints instead of a raw error chain.
func fatal(err error) {
	switch {
	case errors.Is(err, offload.ErrUnknownRegion):
		fmt.Fprintf(os.Stderr, "polybench: %v\n", err)
		fmt.Fprintf(os.Stderr, "hint: the kernel is not registered with the runtime; the driver registers polybench.Suite(), so this usually means a stale or misspelled kernel name.\n")
	case errors.Is(err, offload.ErrUnboundSymbol):
		fmt.Fprintf(os.Stderr, "polybench: %v\n", err)
		fmt.Fprintf(os.Stderr, "hint: the dataset mode did not bind every symbolic parameter the kernel's attributes need; check the kernel's Bindings(mode) table.\n")
	default:
		fmt.Fprintln(os.Stderr, "polybench:", err)
	}
	os.Exit(1)
}
