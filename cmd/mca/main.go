// Command mca runs the machine-code-analyzer-style pipeline throughput
// analysis on a Polybench kernel body and prints an llvm-mca-inspired
// report: cycles per work item, IPC, critical dependency chains, and
// per-unit resource pressure.
//
// Usage:
//
//	mca -kernel gemm -cpu power9 -n 1100
//	mca -kernel corr -cpu power8
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hybridsel/hybridsel/internal/ir"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/mca"
	"github.com/hybridsel/hybridsel/internal/polybench"
)

func main() {
	kernel := flag.String("kernel", "gemm", "kernel name")
	cpuName := flag.String("cpu", "power9", "host model: power8|power9")
	n := flag.Int64("n", 0, "bind n for exact trip counts (0 = static 128 heuristic)")
	flag.Parse()

	var cpu *machine.CPU
	switch *cpuName {
	case "power9":
		cpu = machine.POWER9()
	case "power8":
		cpu = machine.POWER8()
	default:
		fatal(fmt.Errorf("unknown cpu %q (power8|power9)", *cpuName))
	}

	k, err := polybench.Get(*kernel)
	if err != nil {
		fatal(err)
	}
	opt := ir.DefaultCountOptions()
	if *n > 0 {
		opt.Bindings = ir.MidpointBindings(k.IR, map[string]int64{"n": *n})
	}
	prog, err := mca.Lower(k.IR, opt)
	if err != nil {
		fatal(err)
	}
	rep := mca.Analyze(prog, cpu)
	fmt.Print(rep.Format())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mca:", err)
	os.Exit(1)
}
