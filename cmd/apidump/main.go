// Command apidump prints the exported API surface of the stable model
// packages (internal/offload, internal/machine, internal/learn,
// internal/wire, internal/server, internal/client, internal/cluster
// by default) in a
// deterministic, diff-friendly text
// form: one line per
// exported declaration, const/var blocks kept whole so enum ordering is
// part of the surface, struct and interface bodies pruned to their
// exported members.
//
// The committed snapshot lives at api/exported.txt. scripts/check.sh
// runs `apidump -check api/exported.txt` so any change to the exported
// surface — a renamed method, a reordered enum, a new field — fails the
// gate until the snapshot is regenerated (make api) and reviewed with
// the change that caused it.
//
// Usage:
//
//	apidump                         # dump default packages to stdout
//	apidump internal/trace          # dump a specific package
//	apidump -check api/exported.txt # diff against snapshot, exit 1 on drift
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	check := flag.String("check", "",
		"snapshot file to compare against; exits non-zero on any drift")
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"internal/offload", "internal/machine", "internal/learn",
			"internal/wire", "internal/server", "internal/client",
			"internal/cluster"}
	}

	var out bytes.Buffer
	for _, dir := range dirs {
		if err := dumpDir(&out, dir); err != nil {
			fmt.Fprintln(os.Stderr, "apidump:", err)
			os.Exit(1)
		}
	}

	if *check == "" {
		os.Stdout.Write(out.Bytes())
		return
	}
	want, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apidump: cannot read snapshot: %v\n", err)
		fmt.Fprintf(os.Stderr, "apidump: regenerate with `make api`\n")
		os.Exit(1)
	}
	if bytes.Equal(out.Bytes(), want) {
		fmt.Printf("apidump: exported surface matches %s\n", *check)
		return
	}
	fmt.Fprintf(os.Stderr, "apidump: exported API surface drifted from %s\n", *check)
	reportDrift(want, out.Bytes())
	fmt.Fprintf(os.Stderr, "apidump: if the change is intentional, regenerate with `make api` and commit the snapshot with it\n")
	os.Exit(1)
}

// dumpDir appends the exported surface of one package directory.
func dumpDir(out *bytes.Buffer, dir string) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var entries []string
		files := make([]string, 0, len(pkgs[name].Files))
		for f := range pkgs[name].Files {
			files = append(files, f)
		}
		sort.Strings(files)
		for _, f := range files {
			entries = append(entries, fileEntries(fset, pkgs[name].Files[f])...)
		}
		sort.Strings(entries)
		fmt.Fprintf(out, "package %s (%s)\n", name, dir)
		for _, e := range entries {
			fmt.Fprintf(out, "  %s\n", e)
		}
	}
	return nil
}

// fileEntries renders each exported top-level declaration of one file as
// a normalized single line.
func fileEntries(fset *token.FileSet, f *ast.File) []string {
	var entries []string
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedRecv(d.Recv) {
				continue
			}
			fn := *d
			fn.Doc, fn.Body = nil, nil
			entries = append(entries, render(fset, &fn))
		case *ast.GenDecl:
			if d.Tok == token.IMPORT {
				continue
			}
			if e := genDeclEntry(fset, d); e != "" {
				entries = append(entries, e)
			}
		}
	}
	return entries
}

// exportedRecv reports whether a receiver (nil for plain functions)
// names an exported type — methods on unexported types are not surface.
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// genDeclEntry renders a const/var/type declaration with unexported
// names, struct fields, and interface methods pruned. Const/var blocks
// stay whole so iota ordering changes show up in the snapshot.
func genDeclEntry(fset *token.FileSet, d *ast.GenDecl) string {
	g := *d
	g.Doc = nil
	var specs []ast.Spec
	exported := false
	for _, spec := range g.Specs {
		switch s := spec.(type) {
		case *ast.ValueSpec:
			if !anyExported(s.Names) {
				// Within an iota block an unexported spec still advances
				// the counter; keep a placeholder so values stay honest.
				if d.Tok == token.CONST && len(g.Specs) > 1 {
					specs = append(specs, &ast.ValueSpec{
						Names: []*ast.Ident{ast.NewIdent("_")}})
				}
				continue
			}
			c := *s
			c.Doc, c.Comment = nil, nil
			specs = append(specs, &c)
			exported = true
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			c := *s
			c.Doc, c.Comment = nil, nil
			c.Type = pruneType(c.Type)
			specs = append(specs, &c)
			exported = true
		}
	}
	if !exported {
		return ""
	}
	g.Specs = specs
	return render(fset, &g)
}

func anyExported(names []*ast.Ident) bool {
	for _, n := range names {
		if n.IsExported() {
			return true
		}
	}
	return false
}

// pruneType drops unexported members from struct and interface bodies;
// everything else is surface as written.
func pruneType(t ast.Expr) ast.Expr {
	switch x := t.(type) {
	case *ast.StructType:
		s := *x
		s.Fields = pruneFields(x.Fields)
		return &s
	case *ast.InterfaceType:
		i := *x
		i.Methods = pruneFields(x.Methods)
		return &i
	}
	return t
}

func pruneFields(fl *ast.FieldList) *ast.FieldList {
	if fl == nil {
		return nil
	}
	out := &ast.FieldList{}
	for _, f := range fl.List {
		keep := len(f.Names) == 0 // embedded field or interface embedding
		for _, n := range f.Names {
			if n.IsExported() {
				keep = true
			}
		}
		if !keep {
			continue
		}
		c := *f
		c.Doc, c.Comment = nil, nil
		out.List = append(out.List, &c)
	}
	return out
}

// render pretty-prints a declaration and collapses it to one line so the
// snapshot sorts and diffs per declaration.
func render(fset *token.FileSet, node ast.Node) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<render error: %v>", err)
	}
	lines := strings.Split(strings.ReplaceAll(buf.String(), "\t", " "), "\n")
	parts := lines[:0]
	for _, l := range lines {
		if l = strings.Join(strings.Fields(l), " "); l != "" {
			parts = append(parts, l)
		}
	}
	return strings.Join(parts, " ")
}

// reportDrift prints a minimal line diff between snapshot and current.
func reportDrift(want, got []byte) {
	wl := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	gl := strings.Split(strings.TrimRight(string(got), "\n"), "\n")
	wset := make(map[string]bool, len(wl))
	for _, l := range wl {
		wset[l] = true
	}
	gset := make(map[string]bool, len(gl))
	for _, l := range gl {
		gset[l] = true
	}
	for _, l := range wl {
		if !gset[l] {
			fmt.Fprintf(os.Stderr, "  - %s\n", l)
		}
	}
	for _, l := range gl {
		if !wset[l] {
			fmt.Fprintf(os.Stderr, "  + %s\n", l)
		}
	}
}
