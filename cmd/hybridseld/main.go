// Command hybridseld serves the offload runtime as a network decision
// service: it registers a region set (the Polybench suite, or a subset),
// optionally verifies it against a program-attribute-database snapshot,
// and answers decision queries over HTTP/JSON with admission control,
// Prometheus metrics, structured request logs, and graceful drain on
// SIGTERM/SIGINT.
//
// Usage:
//
//	hybridseld -addr :8080
//	hybridseld -addr :8080 -stream-addr :8090         # persistent stream transport
//	hybridseld -addr 127.0.0.1:8080 -policy model-guided -queue 512
//	hybridseld -regions gemm,mvt1 -trace /tmp/decisions.jsonl
//	hybridseld -targets synthetic                   # rank an N-way registry
//	hybridseld -targets synthetic -constraints cap=gpu/*:8,avoid=cpu/smt2
//	hybridseld -audit-rate 0.1 -audit-workers 2     # shadow-audit 10% of keys
//	hybridseld -audit-rate 1 -learn                 # learned residual corrections
//	hybridseld -learn -learn-out w.json             # persist learner state on drain
//	hybridseld -pprof-addr 127.0.0.1:6060           # profiling on its own listener
//	hybridseld -attrdb-out snapshot.json -dry-run   # write the DB and exit
//	hybridseld -attrdb snapshot.json                # verify DB against snapshot
//	hybridseld -chaos flap -chaos-addr :8081        # faulty front door for drills
//	hybridseld -node node-a -gossip-addr :7946 \
//	    -peers node-b=http://h2:7946,node-c=http://h3:7946   # 3-replica ring
//
// With -chaos the daemon additionally listens on -chaos-addr behind a
// deterministic fault-injection proxy (internal/faultnet) replaying the
// given scenario — a preset name (flap, brownout, partition-heal,
// faults30) or the scenario DSL — in a loop until shutdown. The clean
// listener on -addr is unaffected; point resilient clients at the chaos
// port to drill retries, hedging and breaker behaviour against a live
// daemon.
//
// With -audit-rate > 0 the daemon shadow-audits a deterministic sample of
// served decisions on background workers: both targets are measured, the
// per-region accuracy accounting is exposed on GET /v1/audit and /metrics,
// and an online calibrator feeds the measured error back into subsequent
// decisions. A summary is logged on drain.
//
// With -learn (requires -audit-rate > 0) the audit stream additionally
// trains an online residual learner (internal/learn): a deterministic
// per-(region, target) ridge regression over the decision features whose
// confidence-gated corrections replace the EWMA factors once a model has
// seen -learn-min-samples audited points, with the EWMA as fallback
// below the gate. Learner state is inspectable on GET /v1/learn and
// /metrics (hybridsel_learner_* series), can be seeded from a snapshot
// with -learn-in, and is persisted to -learn-out on drain.
//
// With -node/-peers the daemon joins a consistent-hash replica ring
// (internal/cluster): the static seed membership defines key ownership,
// a lightweight gossip exchange on -gossip-addr replicates member
// health plus calibration and learner state (so any replica serves any
// key warm), and GET /v1/cluster exposes membership, incarnations, and
// replication status alongside hybridsel_cluster_* series on /metrics.
// Cluster-aware clients (client.NewCluster, loadgen -cluster) route
// each key to its owner and hedge or fail over to ring successors.
//
// POST /v2/decide additionally speaks the compact binary frame format
// (internal/wire) via content negotiation: requests with Content-Type
// application/x-hybridsel-frame are decoded as length-prefixed frames
// (slot-form bindings with a key-layout hash, or named form) and
// answered in kind; everything else — including /v1 — stays JSON.
// Drive it with `loadgen -wire binary` or a client with Binary: true.
//
// With -stream-addr the daemon additionally serves the persistent
// multiplexed stream transport on a raw TCP listener: long-lived
// connections carrying pipelined decide frames tagged with stream IDs,
// per-connection credit flow control instead of 429 churn, and Goaway
// drain on shutdown. The same protocol is always reachable on the HTTP
// port via GET /v1/stream with Upgrade: hybridsel-stream. Drive it with
// `loadgen -wire stream` or a client with Stream: true.
//
// Then:
//
//	curl -s localhost:8080/v1/decide -d '{"region":"gemm","bindings":{"n":1100}}'
//	curl -s localhost:8080/v2/decide -d '{"region":"gemm","bindings":{"n":1100}}'
//	curl -s localhost:8080/v1/regions
//	curl -s localhost:8080/v1/targets
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/hybridsel/hybridsel/internal/attrdb"
	"github.com/hybridsel/hybridsel/internal/audit"
	"github.com/hybridsel/hybridsel/internal/cluster"
	"github.com/hybridsel/hybridsel/internal/faultnet"
	"github.com/hybridsel/hybridsel/internal/learn"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/server"
	"github.com/hybridsel/hybridsel/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	streamAddr := flag.String("stream-addr", "",
		"serve the persistent stream transport on this raw TCP address (empty = HTTP Upgrade only)")
	streamCredit := flag.Int("stream-credit", 0,
		"per-connection in-flight window on stream connections (0 = default)")
	platform := flag.String("platform", "p9v100", "platform: p9v100|p8k80")
	threads := flag.Int("threads", 160, "host thread count")
	policy := flag.String("policy", "model-guided",
		"policy: model-guided|always-gpu|always-cpu|oracle|split")
	cacheSize := flag.Int("cache", 0,
		"decision-cache entries per region (0 = default, <0 = disabled)")
	targets := flag.String("targets", "classic",
		"target registry: classic|synthetic|comma-separated IDs (e.g. cpu/base,gpu/base,gpu/prev)")
	constraints := flag.String("constraints", "",
		"ranking constraints, comma-separated: avoid=<pattern>, cap=<pattern>:<n>")
	regions := flag.String("regions", "",
		"comma-separated kernel subset (default: full Polybench suite)")
	queue := flag.Int("queue", 0,
		"admission queue depth beyond the worker pool (0 = default)")
	workers := flag.Int("workers", 0, "request concurrency (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request deadline")
	drain := flag.Duration("drain", 10*time.Second,
		"grace period for in-flight requests on shutdown")
	attrdbIn := flag.String("attrdb", "",
		"attribute-database snapshot to verify the region set against")
	attrdbOut := flag.String("attrdb-out", "",
		"write the registered attribute database as a snapshot and continue")
	traceOut := flag.String("trace", "",
		"record every served decision as JSONL to this file")
	auditRate := flag.Float64("audit-rate", 0,
		"shadow-audit sampling rate over distinct decision keys (0 = off, 1 = all)")
	auditWorkers := flag.Int("audit-workers", 1,
		"background audit goroutines (0 = audit inline on the request path)")
	learnOn := flag.Bool("learn", false,
		"train a residual learner from the audit stream and gate decisions on it (requires -audit-rate > 0)")
	learnMinSamples := flag.Int("learn-min-samples", 0,
		"audited samples before a learned model corrects decisions (0 = default)")
	learnIn := flag.String("learn-in", "",
		"seed the learner from this snapshot at startup")
	learnOut := flag.String("learn-out", "",
		"write the learner's snapshot to this file on drain")
	nodeID := flag.String("node", "",
		"this replica's cluster member ID (enables cluster mode, e.g. node-a)")
	peers := flag.String("peers", "",
		"static peer set as comma-separated id=gossip-url pairs (e.g. node-b=http://host:7946)")
	gossipAddr := flag.String("gossip-addr", "127.0.0.1:0",
		"listen address for the cluster gossip exchange (cluster mode only)")
	gossipInterval := flag.Duration("gossip-interval", 500*time.Millisecond,
		"gossip exchange cadence")
	pprofAddr := flag.String("pprof-addr", "",
		"serve net/http/pprof on this separate listener (empty = off; keep it loopback)")
	chaos := flag.String("chaos", "",
		"front the daemon with a fault-injection listener replaying this scenario (preset or DSL)")
	chaosAddr := flag.String("chaos-addr", "127.0.0.1:0",
		"listen address for the -chaos fault-injection proxy")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection RNG seed")
	logFormat := flag.String("log", "text", "log format: text|json")
	logLevel := flag.String("log-level", "info",
		"log level: debug|info|warn (debug includes per-request lines)")
	dryRun := flag.Bool("dry-run", false,
		"register, verify and write snapshots, then exit without serving")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridseld:", err)
		os.Exit(1)
	}

	pol, err := offload.ParsePolicy(*policy)
	if err != nil {
		fatal(logger, err)
	}
	var plat machine.Platform
	switch *platform {
	case "p9v100":
		plat = machine.PlatformP9V100()
	case "p8k80":
		plat = machine.PlatformP8K80()
	default:
		fatal(logger, fmt.Errorf("unknown platform %q", *platform))
	}

	reg, err := offload.ParseTargets(plat, *threads, *targets)
	if err != nil {
		fatal(logger, err)
	}
	cons, err := offload.ParseConstraints(*constraints)
	if err != nil {
		fatal(logger, err)
	}

	cfg := offload.Config{
		Platform:          plat,
		Threads:           *threads,
		Policy:            pol,
		DecisionCacheSize: *cacheSize,
		Targets:           reg,
		Constraints:       cons,
	}

	// Decision trace recording, wired through the runtime observer so it
	// captures served /v1/decide traffic exactly as an in-process harness
	// would capture launches.
	var tw *trace.Writer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(logger, err)
		}
		defer f.Close()
		tw = trace.NewWriter(f)
		cfg.Observer = tw.Observer()
	}

	// The calibrator (and the learner wrapping it) must exist before the
	// runtime (they are Config hooks); the auditor needs the built
	// runtime, so it is wired in below via SetObserver.
	var cal *audit.Calibrator
	var lrn *learn.Learner
	if *learnOn && *auditRate <= 0 {
		fatal(logger, errors.New("-learn needs an audit training stream: set -audit-rate > 0"))
	}
	if *auditRate > 0 {
		cal = audit.NewCalibrator(0)
		cfg.Calibrator = cal
		if *learnOn {
			lrn = learn.New(learn.Config{Fallback: cal, MinSamples: *learnMinSamples})
			if *learnIn != "" {
				if err := loadLearner(lrn, *learnIn); err != nil {
					fatal(logger, err)
				}
				logger.Info("learner snapshot loaded", "path", *learnIn)
			}
			cfg.Calibrator = lrn
		}
	}

	// Cluster state-replication sources wrap the calibrator and learner
	// (when present) behind monotonic versions. They are created even
	// before cluster mode is decided so the audit hook below can bump
	// them unconditionally — a bump is one atomic add.
	var calSrc, lrnSrc *cluster.VersionedSource
	if cal != nil {
		calSrc = cluster.NewVersionedSource("calibration", cal.SnapshotState, cal.MergeState)
	}
	if lrn != nil {
		lrnSrc = cluster.NewVersionedSource("learner", lrn.EncodeState, func(data []byte) (bool, error) {
			s, err := learn.DecodeState(data)
			if err != nil {
				return false, err
			}
			return lrn.Merge(s)
		})
	}

	rt := offload.NewRuntime(cfg)
	names, err := registerRegions(rt, *regions)
	if err != nil {
		fatal(logger, err)
	}

	var auditor *audit.Auditor
	if *auditRate > 0 {
		acfg := audit.Config{
			Runtime:    rt,
			Rate:       *auditRate,
			Workers:    *auditWorkers,
			Calibrator: cal,
		}
		if lrn != nil {
			acfg.Learner = lrn
			logger.Info("residual learner enabled",
				"min_samples", lrn.MinSamples())
		}
		if tw != nil {
			acfg.OnVerdict = audit.RecordObserver(tw)
		}
		if calSrc != nil {
			// Every completed audit verdict may have moved calibration (and
			// learner) state: mark both for replication on the next gossip
			// exchange.
			prev := acfg.OnVerdict
			acfg.OnVerdict = func(v audit.Verdict) {
				if prev != nil {
					prev(v)
				}
				calSrc.Bump()
				if lrnSrc != nil {
					lrnSrc.Bump()
				}
			}
		}
		auditor = audit.New(acfg)
		var decisionObs func(offload.Decision)
		if tw != nil {
			decisionObs = tw.Observer()
		}
		rt.SetObserver(auditor.Observer(decisionObs))
		logger.Info("shadow audit enabled",
			"rate", *auditRate, "workers", *auditWorkers)
	}
	logger.Info("registered regions", "count", len(names), "policy", pol.Name(),
		"platform", plat.Name, "threads", rt.Config().Threads,
		"targets", strings.Join(rt.Targets().IDs(), ","),
		"constraints", offload.ConstraintNames(cons))

	if *attrdbIn != "" {
		if err := verifySnapshot(rt, *attrdbIn); err != nil {
			fatal(logger, err)
		}
		logger.Info("attrdb snapshot verified", "path", *attrdbIn)
	}
	if *attrdbOut != "" {
		if err := writeSnapshot(rt, *attrdbOut, plat.Name); err != nil {
			fatal(logger, err)
		}
		logger.Info("attrdb snapshot written", "path", *attrdbOut)
	}
	if *dryRun {
		if auditor != nil {
			auditor.Close()
		}
		closeLearn(logger, lrn, *learnOut)
		if err := flushTrace(logger, tw); err != nil {
			os.Exit(1)
		}
		return
	}

	// Cluster mode: join the consistent-hash member ring and gossip
	// health plus calibration/learner state with the static peer set.
	// Ownership is fixed by the seed membership — gossip never moves it —
	// so clients route and fail over purely by ring order while state
	// replication keeps every replica warm for any key.
	var node *cluster.Node
	var gossipSrv *http.Server
	var gossipStop func()
	if *nodeID != "" || *peers != "" {
		if *nodeID == "" {
			fatal(logger, errors.New("-peers requires -node"))
		}
		members, err := parsePeers(*peers)
		if err != nil {
			fatal(logger, err)
		}
		gl, err := net.Listen("tcp", *gossipAddr)
		if err != nil {
			fatal(logger, err)
		}
		node, err = cluster.New(cluster.Config{
			Self:      cluster.Member{ID: *nodeID, Addr: *addr, Gossip: "http://" + gl.Addr().String()},
			Peers:     members,
			Transport: &cluster.HTTPTransport{},
			Logger:    logger,
		})
		if err != nil {
			fatal(logger, err)
		}
		if calSrc != nil {
			node.Register(calSrc.Source())
		}
		if lrnSrc != nil {
			node.Register(lrnSrc.Source())
		}
		gossipSrv = &http.Server{Handler: node.Handler()}
		go func() {
			if err := gossipSrv.Serve(gl); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("gossip listener", "err", err)
			}
		}()
		gossipStop = node.Start(*gossipInterval)
		logger.Info("cluster node up",
			"id", *nodeID, "gossip", "http://"+gl.Addr().String(),
			"peers", len(members), "interval", gossipInterval.String())
	}

	srv, err := server.New(server.Config{
		Runtime:        rt,
		Concurrency:    *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		StreamCredit:   *streamCredit,
		Logger:         logger,
		Auditor:        auditor,
		Learner:        lrn,
		Cluster:        node,
	})
	if err != nil {
		fatal(logger, err)
	}

	// The profiling listener is separate from the service address so debug
	// endpoints are never exposed on the decision port; its shutdown is
	// drain-safe (an in-flight CPU profile finishes its window).
	var pprofSrv *server.PprofServer
	if *pprofAddr != "" {
		pprofSrv, err = server.StartPprof(*pprofAddr, logger)
		if err != nil {
			fatal(logger, err)
		}
	}

	// Serve until SIGTERM/SIGINT, then drain: stop admitting, let
	// in-flight requests finish (bounded by -drain), flush the trace.
	ctx, stop := signal.NotifyContext(context.Background(),
		syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// The chaos listener fronts the daemon's own service address and
	// replays its scenario until shutdown. It only dials on demand, so it
	// can start before the service listener is up.
	var chaosProxy *faultnet.Proxy
	if *chaos != "" {
		sc, err := faultnet.ParseScenario(*chaos)
		if err != nil {
			fatal(logger, err)
		}
		target := *addr
		if strings.HasPrefix(target, ":") {
			target = "127.0.0.1" + target
		}
		chaosProxy = faultnet.New("http://"+target, *chaosSeed)
		paddr, err := chaosProxy.Start(*chaosAddr)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("chaos listener up",
			"addr", paddr, "scenario", sc.Name, "pass", sc.Total().String())
		go func() {
			for ctx.Err() == nil {
				_ = chaosProxy.Run(ctx, sc, func(i int, s faultnet.Step) {
					logger.Info("chaos step", "step", i,
						"faults", s.Faults.String(), "hold", s.Duration.String())
				})
			}
		}()
	}

	// The raw stream listener serves the persistent frame transport next
	// to the HTTP port (the Upgrade path on -addr works regardless);
	// srv.Shutdown drains it with Goaway under the same -drain grace.
	if *streamAddr != "" {
		sl, err := net.Listen("tcp", *streamAddr)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("stream listener up", "addr", sl.Addr().String())
		go func() {
			if err := srv.ServeStream(sl); err != nil {
				logger.Error("stream listener", "err", err)
			}
		}()
	}

	served := make(chan error, 1)
	go func() { served <- srv.ListenAndServe(*addr) }()

	select {
	case err := <-served:
		if err != nil {
			fatal(logger, err)
		}
	case <-ctx.Done():
		logger.Info("signal received, draining", "grace", drain.String())
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			logger.Error("drain incomplete", "err", err)
			closeCluster(logger, gossipStop, gossipSrv)
			closeChaos(logger, chaosProxy)
			closePprof(logger, pprofSrv, dctx)
			closeAudit(logger, auditor)
			closeLearn(logger, lrn, *learnOut)
			_ = flushTrace(logger, tw)
			os.Exit(1)
		}
		if err := <-served; err != nil {
			fatal(logger, err)
		}
		m := rt.Metrics()
		logger.Info("drained",
			"launches", m.Launches, "decides", m.Decides,
			"cache_hits", m.DecisionCacheHits, "cache_misses", m.DecisionCacheMisses)
	}
	closeCluster(logger, gossipStop, gossipSrv)
	closeChaos(logger, chaosProxy)
	closePprof(logger, pprofSrv, context.Background())
	closeAudit(logger, auditor)
	closeLearn(logger, lrn, *learnOut)
	if err := flushTrace(logger, tw); err != nil {
		os.Exit(1)
	}
}

// loadLearner seeds the learner from a snapshot written by -learn-out.
func loadLearner(l *learn.Learner, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := learn.ReadSnapshot(f)
	if err != nil {
		return err
	}
	return l.Restore(s)
}

// closeLearn logs the learner's final accounting and persists its
// snapshot, if requested. The audit queue must already be drained so the
// snapshot holds every observed sample.
func closeLearn(logger *slog.Logger, l *learn.Learner, out string) {
	if l == nil {
		return
	}
	st := l.Stats()
	logger.Info("learner summary",
		"samples", st.Samples, "updates", st.Updates,
		"region_models", st.RegionModels, "global_models", st.GlobalModels,
		"confident_models", st.ConfidentModels,
		"learned_verdicts", st.LearnedVerdicts,
		"analytical_verdicts", st.AnalyticalVerdicts)
	if out == "" {
		return
	}
	f, err := os.Create(out)
	if err != nil {
		logger.Error("learner snapshot", "err", err)
		return
	}
	if err := learn.WriteSnapshot(f, l.Snapshot()); err != nil {
		logger.Error("learner snapshot", "err", err)
		f.Close()
		return
	}
	if err := f.Close(); err != nil {
		logger.Error("learner snapshot", "err", err)
		return
	}
	logger.Info("learner snapshot written", "path", out)
}

// parsePeers parses the -peers list: comma-separated id=gossip-url
// pairs naming the static seed membership (this node excluded).
func parsePeers(s string) ([]cluster.Member, error) {
	var out []cluster.Member
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-peers entry %q: want id=gossip-url", part)
		}
		out = append(out, cluster.Member{ID: id, Gossip: url})
	}
	return out, nil
}

// closeCluster stops the gossip loop and listener, if cluster mode was
// on.
func closeCluster(logger *slog.Logger, stop func(), srv *http.Server) {
	if stop != nil {
		stop()
	}
	if srv != nil {
		if err := srv.Close(); err != nil {
			logger.Error("gossip listener close", "err", err)
		}
	}
}

// closeChaos stops the fault-injection listener, if one was started.
func closeChaos(logger *slog.Logger, p *faultnet.Proxy) {
	if p == nil {
		return
	}
	if err := p.Close(); err != nil {
		logger.Error("chaos listener close", "err", err)
	}
}

// closePprof drains the profiling listener (bounded by ctx).
func closePprof(logger *slog.Logger, p *server.PprofServer, ctx context.Context) {
	if p == nil {
		return
	}
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := p.Shutdown(dctx); err != nil {
		logger.Error("pprof shutdown", "err", err)
	}
}

// closeAudit drains the audit queue and logs the final accuracy summary.
func closeAudit(logger *slog.Logger, a *audit.Auditor) {
	if a == nil {
		return
	}
	a.Close()
	rep := a.Report()
	logger.Info("audit summary",
		"rate", rep.Rate, "offered", rep.Offered, "audited", rep.Samples,
		"dropped", rep.Dropped, "mispredicts", rep.Mispredicts,
		"regret_seconds", rep.RegretSeconds)
	for _, rr := range rep.Regions {
		logger.Info("audit region",
			"region", rr.Region, "samples", rr.Samples,
			"mispredicts", rr.Mispredicts, "regret_seconds", rr.RegretSeconds,
			"cpu_factor", rr.CPU.Factor, "gpu_factor", rr.GPU.Factor)
	}
}

// registerRegions registers the requested kernel subset (or the whole
// suite) and returns the registered names.
func registerRegions(rt *offload.Runtime, subset string) ([]string, error) {
	want := map[string]bool{}
	if subset != "" {
		for _, name := range strings.Split(subset, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := polybench.Get(name); err != nil {
				return nil, err
			}
			want[name] = true
		}
		if len(want) == 0 {
			return nil, errors.New("-regions selected no kernels")
		}
	}
	var names []string
	for _, k := range polybench.Suite() {
		if len(want) > 0 && !want[k.Name] {
			continue
		}
		if _, err := rt.Register(k.IR); err != nil {
			return nil, err
		}
		names = append(names, k.Name)
	}
	return names, nil
}

// verifySnapshot checks the runtime's attribute database against a
// snapshot produced by an earlier run (-attrdb-out).
func verifySnapshot(rt *offload.Runtime, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := attrdb.ReadSnapshot(f)
	if err != nil {
		return err
	}
	return s.VerifyDB(rt.DB())
}

// writeSnapshot persists the runtime's attribute database.
func writeSnapshot(rt *offload.Runtime, path, platform string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := attrdb.WriteSnapshot(f, attrdb.NewSnapshot(rt.DB(), platform, "hybridseld")); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// flushTrace flushes the writer and surfaces its latched error, if any:
// a trace that silently lost records must fail the run, not report
// success with a truncated file.
func flushTrace(logger *slog.Logger, tw *trace.Writer) error {
	if tw == nil {
		return nil
	}
	if err := tw.Flush(); err != nil {
		logger.Error("trace flush", "err", err)
		return err
	}
	logger.Info("trace flushed", "records", tw.Len())
	return nil
}

func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	default:
		return nil, fmt.Errorf("unknown log level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}
