// Command offloadsim regenerates the paper's evaluation artifacts: the
// cross-generation offloading study (Table I), the model parameter tables
// (Tables II and III), the actual-vs-predicted studies (Figures 6 and 7),
// the policy comparison (Figure 8), and the ablation studies.
//
// Usage:
//
//	offloadsim -exp all
//	offloadsim -exp table1
//	offloadsim -exp fig6
//	offloadsim -exp fig8 -threads 160
//	offloadsim -exp ablations
//	offloadsim -exp audit -rounds 3 -audit-rate 1
//	offloadsim -exp learn -rounds 3 -points 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hybridsel/hybridsel/internal/epcc"
	"github.com/hybridsel/hybridsel/internal/experiments"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/polybench"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment: table1|table2|table3|fig6|fig7|fig8|ablations|audit|learn|all")
	threads := flag.Int("threads", 4,
		"host thread count for the fig6/fig7 and audit comparisons")
	parallel := flag.Int("parallel", 0, "simulation parallelism (0 = NumCPU)")
	rounds := flag.Int("rounds", 3, "launches per kernel in the audit and learn studies")
	points := flag.Int("points", 4,
		"distinct problem sizes per kernel in the learn study")
	auditRate := flag.Float64("audit-rate", 1,
		"shadow-audit sampling rate for the audit and learn studies")
	metrics := flag.Bool("metrics", false,
		"print aggregated offload-runtime instrumentation after the runs")
	flag.Parse()

	r, err := experiments.NewRunner(experiments.Options{Parallelism: *parallel})
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		t0 := time.Now()
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", func() error {
		rows, err := r.Table1()
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable1(rows))
		return nil
	})

	run("table2", func() error {
		cpu := machine.POWER9()
		m, err := epcc.Measure(cpu, 20)
		if err != nil {
			return err
		}
		fmt.Println(epcc.Table2(cpu, m))
		return nil
	})

	run("table3", func() error {
		fmt.Println(experiments.RenderTable3(machine.TeslaV100(), machine.NVLink2()))
		fmt.Println(experiments.RenderTable3(machine.TeslaK80(), machine.PCIe3()))
		return nil
	})

	run("fig6", func() error {
		rows, err := r.Figure(polybench.Test, *threads)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFigure(rows, polybench.Test, *threads))
		return nil
	})

	run("fig7", func() error {
		rows, err := r.Figure(polybench.Benchmark, *threads)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFigure(rows, polybench.Benchmark, *threads))
		return nil
	})

	run("fig8", func() error {
		for _, m := range []polybench.Mode{polybench.Test, polybench.Benchmark} {
			res, err := r.Figure8(m)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderFigure8(res))
		}
		return nil
	})

	run("audit", func() error {
		for _, m := range []polybench.Mode{polybench.Test, polybench.Benchmark} {
			res, err := r.AuditStudy(m, *threads, *rounds, *auditRate)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderAudit(res))
			fmt.Println()
		}
		return nil
	})

	run("learn", func() error {
		for _, m := range []polybench.Mode{polybench.Test, polybench.Benchmark} {
			res, err := r.LearnStudy(m, *threads, *rounds, *points, *auditRate)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderLearn(res))
			fmt.Println()
		}
		return nil
	})

	run("ablations", func() error {
		for _, ab := range []struct {
			title    string
			variants []experiments.Variant
		}{
			{"Ablation: coalescing source (paper Section IV-C)", experiments.CoalescingVariants()},
			{"Ablation: cycles-per-iteration estimator (Section IV-A.1)", experiments.CPIVariants()},
			{"Ablation: #OMP_Rep grid-coverage factor (Section IV-B)", experiments.OMPRepVariants()},
			{"Ablation: static 128-iteration/50%-branch assumptions", experiments.AssumptionVariants()},
		} {
			rows, err := r.Ablate(polybench.Benchmark, 160, ab.variants)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderAblation(ab.title, rows))
			fmt.Println()
		}
		return nil
	})

	if *metrics {
		fmt.Println(r.Metrics())
	}
	fmt.Printf("total %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "offloadsim:", err)
	os.Exit(1)
}
