// Command explain prints the full white-box reasoning behind one target
// selection: the kernel pseudocode, the IPDA access analysis, both model
// breakdowns, and the resulting decision. This is the transparency
// argument of the paper made concrete — every term of the decision is
// inspectable, unlike an ML model's inference.
//
// Usage:
//
//	explain -kernel 2dconv -n 9600
//	explain -kernel gemm -n 1100 -threads 4 -platform p8k80
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hybridsel/hybridsel/internal/cpumodel"
	"github.com/hybridsel/hybridsel/internal/gpumodel"
	"github.com/hybridsel/hybridsel/internal/ipda"
	"github.com/hybridsel/hybridsel/internal/ir"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

func main() {
	kernel := flag.String("kernel", "gemm", "kernel name")
	n := flag.Int64("n", 1100, "problem size")
	threads := flag.Int("threads", 160, "host threads")
	platform := flag.String("platform", "p9v100", "platform: p9v100|p8k80")
	flag.Parse()

	var plat machine.Platform
	switch *platform {
	case "p9v100":
		plat = machine.PlatformP9V100()
	case "p8k80":
		plat = machine.PlatformP8K80()
	default:
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}

	k, err := polybench.Get(*kernel)
	if err != nil {
		fatal(err)
	}
	b := symbolic.Bindings{"n": *n}

	fmt.Println("=== Target region ===")
	fmt.Print(k.IR.Print())

	opt := ir.CountOptions{DefaultTrip: 128, BranchProb: 0.5,
		Bindings: ir.MidpointBindings(k.IR, b)}
	an, err := ipda.Analyze(k.IR, ir.DefaultCountOptions())
	if err != nil {
		fatal(err)
	}
	sum, err := an.GPUCoalescing(b, ipda.WarpGeom{
		WarpSize: plat.GPU.WarpSize, TransactionBytes: plat.GPU.L2.LineBytes})
	if err != nil {
		fatal(err)
	}
	fmt.Println("\n=== IPDA ===")
	for i := range an.Sites {
		s := &an.Sites[i]
		stride := s.ThreadStride.String()
		if !s.ThreadAffine {
			stride = "(non-affine)"
		}
		wa, _ := s.ResolveGPU(b, ipda.DefaultWarpGeom())
		fmt.Printf("  %-16s %-5s IPD_thread = %-10s -> %s\n",
			s.Access.Ref, s.Access.Kind, stride, wa.Class)
	}
	fmt.Printf("  weighted coalesced fraction: %.0f%%   vectorizable on host: %v\n",
		sum.CoalescedFraction()*100, an.Vectorizable(b))

	load := ir.Count(k.IR, opt)
	fmt.Println("\n=== Instruction loadout (per work item, hybrid counting) ===")
	fmt.Printf("  fp add/mul/div/special: %.0f/%.0f/%.0f/%.0f   int %.0f   loads %.0f   stores %.0f\n",
		load.FPAdd, load.FPMul, load.FPDiv, load.FPSpecial,
		load.IntOps, load.Loads, load.Stores)

	cp, err := cpumodel.Predict(cpumodel.Input{
		Kernel: k.IR, CPU: plat.CPU, Threads: *threads, Bindings: b,
		CountOpt: opt, IPDA: an,
	})
	if err != nil {
		fatal(err)
	}
	gp, err := gpumodel.Predict(gpumodel.Input{
		Kernel: k.IR, GPU: plat.GPU, Link: plat.Link, Bindings: b,
		CountOpt: opt, IPDA: an, Options: gpumodel.DefaultOptions(),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n=== %s, %d host threads ===\n", plat.Name, *threads)
	fmt.Print(cp.Format())
	fmt.Println()
	fmt.Print(gp.Format())

	target := "CPU (host fallback)"
	if gp.Seconds < cp.Seconds {
		target = "GPU (offload)"
	}
	fmt.Printf("\n=== Decision: %s ===\n", target)
	fmt.Printf("predicted speedup of offloading: %.2fx\n", cp.Seconds/gp.Seconds)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "explain:", err)
	os.Exit(1)
}
