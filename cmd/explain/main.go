// Command explain prints the full white-box reasoning behind one target
// selection: the kernel pseudocode, the IPDA access analysis, the base
// pair's model breakdowns, the ranked verdict over every registered
// target, and the decision the offload runtime actually takes (with its
// ground-truth validation launch and instrumentation). This is the
// transparency argument of the paper made concrete — every term of the
// decision is inspectable, unlike an ML model's inference.
//
// Usage:
//
//	explain -kernel 2dconv -n 9600
//	explain -kernel gemm -n 1100 -threads 4 -platform p8k80
//	explain -kernel gemm -launch=false    # models only, no simulation
//	explain -kernel gemm -targets synthetic   # rank an N-way registry
//	explain -kernel gemm -learn-snapshot w.json  # learned corrections per target
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"github.com/hybridsel/hybridsel/internal/cpumodel"
	"github.com/hybridsel/hybridsel/internal/gpumodel"
	"github.com/hybridsel/hybridsel/internal/ipda"
	"github.com/hybridsel/hybridsel/internal/ir"
	"github.com/hybridsel/hybridsel/internal/learn"
	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

func main() {
	kernel := flag.String("kernel", "gemm", "kernel name")
	n := flag.Int64("n", 1100, "problem size")
	threads := flag.Int("threads", 160, "host threads")
	platform := flag.String("platform", "p9v100", "platform: p9v100|p8k80")
	launch := flag.Bool("launch", true,
		"dispatch the region through the runtime and simulate the chosen target")
	targets := flag.String("targets", "classic",
		"target registry: classic|synthetic|comma-separated IDs (e.g. cpu/base,gpu/base,gpu/prev)")
	learnSnap := flag.String("learn-snapshot", "",
		"show each target's learned residual correction from this learner snapshot (see hybridseld -learn-out)")
	flag.Parse()

	var plat machine.Platform
	switch *platform {
	case "p9v100":
		plat = machine.PlatformP9V100()
	case "p8k80":
		plat = machine.PlatformP8K80()
	default:
		fatal(fmt.Errorf("unknown platform %q", *platform))
	}

	k, err := polybench.Get(*kernel)
	if err != nil {
		fatal(err)
	}
	b := symbolic.Bindings{"n": *n}

	reg, err := offload.ParseTargets(plat, *threads, *targets)
	if err != nil {
		fatal(err)
	}
	rt := offload.NewRuntime(offload.Config{Platform: plat, Threads: *threads, Targets: reg})
	region, err := rt.Register(k.IR)
	if err != nil {
		fatal(err)
	}

	fmt.Println("=== Target region ===")
	fmt.Print(region.Kernel.Print())

	opt := ir.CountOptions{DefaultTrip: 128, BranchProb: 0.5,
		Bindings: ir.MidpointBindings(k.IR, b)}
	an := region.Analysis
	sum, err := an.GPUCoalescing(b, ipda.WarpGeom{
		WarpSize: plat.GPU.WarpSize, TransactionBytes: plat.GPU.L2.LineBytes})
	if err != nil {
		fatal(err)
	}
	fmt.Println("\n=== IPDA ===")
	for i := range an.Sites {
		s := &an.Sites[i]
		stride := s.ThreadStride.String()
		if !s.ThreadAffine {
			stride = "(non-affine)"
		}
		wa, _ := s.ResolveGPU(b, ipda.DefaultWarpGeom())
		fmt.Printf("  %-16s %-5s IPD_thread = %-10s -> %s\n",
			s.Access.Ref, s.Access.Kind, stride, wa.Class)
	}
	fmt.Printf("  weighted coalesced fraction: %.0f%%   vectorizable on host: %v\n",
		sum.CoalescedFraction()*100, an.Vectorizable(b))

	load := ir.Count(k.IR, opt)
	fmt.Println("\n=== Instruction loadout (per work item, hybrid counting) ===")
	fmt.Printf("  fp add/mul/div/special: %.0f/%.0f/%.0f/%.0f   int %.0f   loads %.0f   stores %.0f\n",
		load.FPAdd, load.FPMul, load.FPDiv, load.FPSpecial,
		load.IntOps, load.Loads, load.Stores)

	cp, err := cpumodel.Predict(cpumodel.Input{
		Kernel: k.IR, CPU: plat.CPU, Threads: *threads, Bindings: b,
		CountOpt: opt, IPDA: an,
	})
	if err != nil {
		fatal(err)
	}
	gp, err := gpumodel.Predict(gpumodel.Input{
		Kernel: k.IR, GPU: plat.GPU, Link: plat.Link, Bindings: b,
		CountOpt: opt, IPDA: an, Options: gpumodel.DefaultOptions(),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n=== %s, %d host threads ===\n", plat.Name, *threads)
	fmt.Print(cp.Format())
	fmt.Println()
	fmt.Print(gp.Format())

	// The decision feature vector — what a residual learner regresses
	// over (see internal/learn).
	feat, err := region.Features(b)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n=== Decision features ===\n")
	fmt.Printf("  iterations %d   transfer bytes %d   coalesced fraction %.2f\n",
		feat.Iterations, feat.TransferBytes, feat.CoalescedFrac)

	var lrn *learn.Learner
	if *learnSnap != "" {
		f, err := os.Open(*learnSnap)
		if err != nil {
			fatal(err)
		}
		s, err := learn.ReadSnapshot(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		lrn = learn.New(learn.Config{})
		if err := lrn.Restore(s); err != nil {
			fatal(err)
		}
	}

	// The ranked verdict over every registered target — the base pair
	// above are just the two entries every registry carries.
	cands, err := region.PredictTargets(b)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n=== Target ranking (%d registered, ascending predicted time) ===\n",
		len(cands))
	for i, c := range cands {
		marker := "   "
		if i == 0 {
			marker = "-> "
		}
		fmt.Printf("  %s%d. %-10s %-4s %.4gs",
			marker, i+1, c.Target, c.Kind.String(), c.PredSeconds)
		if lrn != nil {
			mult, learned := lrn.Multiplier(k.Name, c.Target, c.PredSeconds, feat)
			src := "below confidence gate, analytical"
			if learned {
				src = fmt.Sprintf("corrected %.4gs", c.PredSeconds*mult)
			}
			fmt.Printf("   [learned x%.3f: %s]", mult, src)
		}
		fmt.Println()
	}

	if !*launch {
		top := cands[0]
		how := "CPU host"
		if top.Kind == offload.KindGPU {
			how = "GPU offload"
		}
		fmt.Printf("\n=== Decision: %s (%s) ===\n", top.Target, how)
		fmt.Printf("predicted speedup of offloading: %.2fx\n", cp.Seconds/gp.Seconds)
		return
	}

	// Dispatch through the runtime so the decision shown is the one the
	// service takes, and validate it against the ground-truth simulator.
	out, err := region.Launch(b)
	if err != nil {
		fatal(err)
	}
	how := "CPU host"
	if out.Target == offload.TargetGPU {
		how = "GPU offload"
	} else if out.Target == offload.TargetSplit {
		how = "cooperative split"
	}
	fmt.Printf("\n=== Decision: %s (%s, policy %s) ===\n",
		out.TargetID, how, out.Policy.Name())
	fmt.Printf("predicted speedup of offloading: %.2fx\n",
		out.PredCPUSeconds/out.PredGPUSeconds)
	fmt.Printf("simulated %v execution: %.4gs  (decision overhead %v)\n",
		out.Target, out.ActualSeconds, out.DecisionOverhead)

	fmt.Println()
	fmt.Print(rt.Metrics())
}

// fatal exits non-zero with a clean, actionable message; the runtime's
// sentinel errors get targeted hints instead of a raw error chain.
func fatal(err error) {
	switch {
	case errors.Is(err, offload.ErrUnknownRegion):
		fmt.Fprintf(os.Stderr, "explain: %v\n", err)
		fmt.Fprintf(os.Stderr, "hint: pass -kernel one of the registered Polybench kernels (see `go run ./cmd/ipda -list` or polybench.Suite()).\n")
	case errors.Is(err, offload.ErrUnboundSymbol):
		fmt.Fprintf(os.Stderr, "explain: %v\n", err)
		fmt.Fprintf(os.Stderr, "hint: the kernel's symbolic attributes need a runtime value this command did not bind; supply the problem size with -n.\n")
	default:
		fmt.Fprintln(os.Stderr, "explain:", err)
	}
	os.Exit(1)
}
