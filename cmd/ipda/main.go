// Command ipda prints the Iteration Point Difference Analysis of a
// Polybench kernel: the symbolic inter-thread stride of every memory
// access, its resolved coalescing class at a given problem size, and the
// CPU-side locality verdicts (vectorizability, false sharing).
//
// Usage:
//
//	ipda -kernel gemm -n 1100
//	ipda -kernel atax2
//	ipda -list
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hybridsel/hybridsel/internal/ipda"
	"github.com/hybridsel/hybridsel/internal/ir"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/stats"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

func main() {
	kernel := flag.String("kernel", "gemm", "kernel name")
	n := flag.Int64("n", 1100, "problem size binding for n")
	list := flag.Bool("list", false, "list available kernels")
	src := flag.Bool("src", false, "print the kernel as OpenMP-style pseudocode")
	flag.Parse()

	if *list {
		for _, k := range polybench.Suite() {
			fmt.Printf("%-13s (%s)\n", k.Name, k.Bench)
		}
		return
	}

	k, err := polybench.Get(*kernel)
	if err != nil {
		fatal(err)
	}
	if *src {
		fmt.Print(k.IR.Print())
		fmt.Println()
	}
	b := symbolic.Bindings{"n": *n}
	res, err := ipda.Analyze(k.IR, ir.CountOptions{
		DefaultTrip: 128, BranchProb: 0.5, Bindings: b})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("IPDA analysis of %s (n = %d)\n", k.Name, *n)
	fmt.Printf("thread dimension: %s   outer parallel dimension: %s\n\n",
		res.ThreadVar, res.OuterVar)

	t := stats.NewTable("", "access", "kind", "weight",
		"IPD_thread (elems)", "class", "tx/warp", "inner stride")
	geom := ipda.DefaultWarpGeom()
	for i := range res.Sites {
		s := &res.Sites[i]
		wa, err := s.ResolveGPU(b, geom)
		if err != nil {
			fatal(err)
		}
		stride := s.ThreadStride.String()
		if !s.ThreadAffine {
			stride = "(non-affine)"
		}
		inner := "-"
		if s.HasInner {
			inner = s.InnerStride.String()
		}
		t.AddRow(s.Access.Ref.String(), s.Access.Kind.String(),
			fmt.Sprintf("%.0f", s.Access.Weight), stride,
			wa.Class.String(), fmt.Sprintf("%d", wa.Transactions), inner)
	}
	fmt.Println(t.String())

	sum, err := res.GPUCoalescing(b, geom)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("coalesced fraction (weighted): %.0f%%   avg transactions/warp: %.1f\n",
		sum.CoalescedFraction()*100, sum.AvgTransactions)
	fmt.Printf("CPU fallback vectorizable: %v\n", res.Vectorizable(b))
	fmt.Printf("false-sharing risk at chunk=1: %.0f%%\n",
		res.FalseSharingRisk(b, 1, 128)*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ipda:", err)
	os.Exit(1)
}
