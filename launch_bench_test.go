package hybridsel

import (
	"testing"

	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/sim"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

// launchConfig keeps simulation cheap so these benchmarks measure the
// decision service itself (model evaluation, caching, dispatch), not the
// ground-truth simulators.
func launchConfig(cacheSize int) offload.Config {
	return offload.Config{
		Platform:          machine.PlatformP9V100(),
		DecisionCacheSize: cacheSize,
		CPUSim:            sim.CPUConfig{SampleItems: 8, MaxLoopSample: 32},
		GPUSim:            sim.GPUConfig{SampleWarps: 2, MaxLoopSample: 32, MaxRepSample: 1},
	}
}

func launchRuntime(b *testing.B, cacheSize int, kernels ...string) (*offload.Runtime, []*offload.Region) {
	b.Helper()
	rt := offload.NewRuntime(launchConfig(cacheSize))
	regions := make([]*offload.Region, len(kernels))
	for i, name := range kernels {
		k, err := polybench.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		if regions[i], err = rt.Register(k.IR); err != nil {
			b.Fatal(err)
		}
	}
	return rt, regions
}

// BenchmarkLaunchCached measures the steady-state launch path: the
// decision comes from the memoized decision cache and the execution from
// the ground-truth cache, so the remaining cost is lookup + dispatch +
// logging. The perf-smoke check requires this to be >=5x cheaper than
// BenchmarkLaunchUncachedInterpreted.
func BenchmarkLaunchCached(b *testing.B) {
	_, regions := launchRuntime(b, 0, "gemm")
	bind := symbolic.Bindings{"n": 128}
	if _, err := regions[0].Launch(bind); err != nil { // warm both caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regions[0].Launch(bind); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaunchUncached disables the decision cache so every launch
// re-evaluates both analytical models (the execution cache stays warm, so
// the difference against BenchmarkLaunchCached isolates model evaluation).
// With the compiled decision programs this lands within ~2x of the cached
// path; the decide benchmarks in decide_bench_test.go track that margin.
func BenchmarkLaunchUncached(b *testing.B) {
	_, regions := launchRuntime(b, -1, "gemm")
	bind := symbolic.Bindings{"n": 128}
	if _, err := regions[0].Launch(bind); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regions[0].Launch(bind); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaunchUncachedInterpreted is the historical baseline the
// perf-smoke bar was set against: every launch re-evaluates the models
// through the interpreted path (DisableCompiledModels), as all launches
// did before the compiled decision programs landed.
func BenchmarkLaunchUncachedInterpreted(b *testing.B) {
	cfg := launchConfig(-1)
	cfg.DisableCompiledModels = true
	rt := offload.NewRuntime(cfg)
	k, err := polybench.Get("gemm")
	if err != nil {
		b.Fatal(err)
	}
	region, err := rt.Register(k.IR)
	if err != nil {
		b.Fatal(err)
	}
	bind := symbolic.Bindings{"n": 128}
	if _, err := region.Launch(bind); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := region.Launch(bind); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaunchParallel drives cached launches at distinct regions from
// all GOMAXPROCS goroutines; the sharded registry and per-region caches
// should let throughput scale rather than serialize on a global lock.
func BenchmarkLaunchParallel(b *testing.B) {
	names := []string{"gemm", "mvt1", "2dconv", "atax2", "gesummv", "syrk"}
	_, regions := launchRuntime(b, 0, names...)
	bind := symbolic.Bindings{"n": 128}
	for _, r := range regions { // warm every region
		if _, err := r.Launch(bind); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := regions[i%len(regions)].Launch(bind); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
