package hybridsel

import (
	"testing"

	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/sim"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

// launchConfig keeps simulation cheap so these benchmarks measure the
// decision service itself (model evaluation, caching, dispatch), not the
// ground-truth simulators.
func launchConfig(cacheSize int) offload.Config {
	return offload.Config{
		Platform:          machine.PlatformP9V100(),
		DecisionCacheSize: cacheSize,
		CPUSim:            sim.CPUConfig{SampleItems: 8, MaxLoopSample: 32},
		GPUSim:            sim.GPUConfig{SampleWarps: 2, MaxLoopSample: 32, MaxRepSample: 1},
	}
}

func launchRuntime(b *testing.B, cacheSize int, kernels ...string) (*offload.Runtime, []*offload.Region) {
	b.Helper()
	rt := offload.NewRuntime(launchConfig(cacheSize))
	regions := make([]*offload.Region, len(kernels))
	for i, name := range kernels {
		k, err := polybench.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		if regions[i], err = rt.Register(k.IR); err != nil {
			b.Fatal(err)
		}
	}
	return rt, regions
}

// BenchmarkLaunchCached measures the steady-state launch path: the
// decision comes from the memoized decision cache and the execution from
// the ground-truth cache, so the remaining cost is lookup + dispatch +
// logging. The perf-smoke check requires this to be >=5x cheaper than
// BenchmarkLaunchUncached.
func BenchmarkLaunchCached(b *testing.B) {
	_, regions := launchRuntime(b, 0, "gemm")
	bind := symbolic.Bindings{"n": 128}
	if _, err := regions[0].Launch(bind); err != nil { // warm both caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regions[0].Launch(bind); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaunchUncached disables the decision cache so every launch
// re-evaluates both analytical models (the execution cache stays warm, so
// the difference against BenchmarkLaunchCached isolates model evaluation).
func BenchmarkLaunchUncached(b *testing.B) {
	_, regions := launchRuntime(b, -1, "gemm")
	bind := symbolic.Bindings{"n": 128}
	if _, err := regions[0].Launch(bind); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regions[0].Launch(bind); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaunchParallel drives cached launches at distinct regions from
// all GOMAXPROCS goroutines; the sharded registry and per-region caches
// should let throughput scale rather than serialize on a global lock.
func BenchmarkLaunchParallel(b *testing.B) {
	names := []string{"gemm", "mvt1", "2dconv", "atax2", "gesummv", "syrk"}
	_, regions := launchRuntime(b, 0, names...)
	bind := symbolic.Bindings{"n": 128}
	for _, r := range regions { // warm every region
		if _, err := r.Launch(bind); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := regions[i%len(regions)].Launch(bind); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
