package hybridsel

import (
	"testing"

	"github.com/hybridsel/hybridsel/internal/machine"
	"github.com/hybridsel/hybridsel/internal/offload"
	"github.com/hybridsel/hybridsel/internal/polybench"
	"github.com/hybridsel/hybridsel/internal/symbolic"
)

// The decide benchmarks measure the decision hot path itself — no
// simulated execution — in its four interesting states: compiled vs
// interpreted model evaluation (uncached), and cache-hit lookups for
// Predict and Decide. scripts/bench.sh runs them with -benchmem and
// freezes the results into BENCH_decide.json; the check gate recomputes
// the compiled-vs-interpreted ratios (machine-independent) and fails on
// regression.
//
// decideKernels is a small cross-section of the suite: a dense matrix
// kernel, a bandwidth-bound vector kernel and a stencil, so the headline
// ratios do not hinge on one kernel's expression shapes.
var decideKernels = []string{"gemm", "mvt1", "2dconv"}

func decideRuntime(b *testing.B, cacheSize int, interpreted bool) []*offload.Region {
	b.Helper()
	rt := offload.NewRuntime(offload.Config{
		Platform:              machine.PlatformP9V100(),
		DecisionCacheSize:     cacheSize,
		DisableCompiledModels: interpreted,
	})
	regions := make([]*offload.Region, len(decideKernels))
	for i, name := range decideKernels {
		k, err := polybench.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		if regions[i], err = rt.Register(k.IR); err != nil {
			b.Fatal(err)
		}
		if !interpreted && !regions[i].Compiled() {
			b.Fatalf("%s did not compile", name)
		}
	}
	return regions
}

func benchPredictUncached(b *testing.B, interpreted bool) {
	regions := decideRuntime(b, -1, interpreted) // cache disabled: every call evaluates the models
	bind := symbolic.Bindings{"n": 1100}
	for _, r := range regions { // shake out one-time work
		if _, _, err := r.Predict(bind); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := regions[i%len(regions)].Predict(bind); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictUncached is the headline number: one full model-pair
// evaluation through the compiled per-region decision programs.
func BenchmarkPredictUncached(b *testing.B) { benchPredictUncached(b, false) }

// BenchmarkPredictUncachedInterpreted is the same workload through the
// interpreted models (DisableCompiledModels) — the baseline the compiled
// path is measured against.
func BenchmarkPredictUncachedInterpreted(b *testing.B) { benchPredictUncached(b, true) }

// BenchmarkPredictCached measures the memoized lookup: hash the slot
// vector, confirm the key in place, return the stored predictions.
func BenchmarkPredictCached(b *testing.B) {
	regions := decideRuntime(b, 0, false)
	bind := symbolic.Bindings{"n": 1100}
	for _, r := range regions {
		if _, _, err := r.Predict(bind); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := regions[i%len(regions)].Predict(bind); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecideCached measures the steady-state decision service:
// cache hit, policy already applied, decision log append.
func BenchmarkDecideCached(b *testing.B) {
	regions := decideRuntime(b, 0, false)
	bind := symbolic.Bindings{"n": 1100}
	for _, r := range regions { // warm: first Decide runs the policy
		if _, err := r.Decide(bind); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regions[i%len(regions)].Decide(bind); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecideCachedParallel drives the cached decide path from all
// GOMAXPROCS goroutines across regions: the sharded decision cache
// should scale instead of serializing on a region mutex.
func BenchmarkDecideCachedParallel(b *testing.B) {
	regions := decideRuntime(b, 0, false)
	bind := symbolic.Bindings{"n": 1100}
	for _, r := range regions {
		if _, err := r.Decide(bind); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := regions[i%len(regions)].Decide(bind); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
